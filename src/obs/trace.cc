#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>

#include "common/strings.h"

namespace dwred::obs {

namespace {

/// The calling thread's causal position. A plain thread_local struct: spans
/// and ScopedTraceContext save/restore it RAII-style, so it always reflects
/// the innermost open (or installed) scope.
thread_local TraceContext t_ctx;

/// Span ids are process-unique and never 0 (0 means "no span").
std::atomic<uint64_t> g_next_span_id{1};

uint64_t AllocateSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceContext CurrentTraceContext() { return t_ctx; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : prev_(t_ctx) {
  t_ctx = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_ctx = prev_; }

TraceBuffer& TraceBuffer::Global() {
  // Leaked for the same static-teardown reason as MetricsRegistry::Global().
  static TraceBuffer* g = new TraceBuffer();
  return *g;
}

void TraceBuffer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, TraceEvent{});
  next_ = 0;
  count_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void TraceBuffer::Disable() {
  enabled_.store(false, std::memory_order_release);
}

void TraceBuffer::Record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event sits at next_ once the ring has wrapped.
  size_t start = count_ == capacity_ ? next_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  count_ = 0;
}

std::string TraceBuffer::DumpJsonLines() const {
  std::string out;
  for (const TraceEvent& ev : Snapshot()) {
    out += "{\"name\":\"" + JsonEscape(ev.name) + "\"";
    if (ev.trace_id != 0) {
      out += ",\"trace\":" + std::to_string(ev.trace_id);
      out += ",\"span\":" + std::to_string(ev.span_id);
      out += ",\"parent\":" + std::to_string(ev.parent_id);
    }
    out += ",\"start_us\":" + std::to_string(ev.start_us);
    out += ",\"dur_us\":" + std::to_string(ev.duration_us);
    for (const auto& [key, value] : ev.fields) {
      out += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
    }
    out += "}\n";
  }
  return out;
}

bool TraceBuffer::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::string lines = DumpJsonLines();
  size_t written = std::fwrite(lines.data(), 1, lines.size(), f);
  bool ok = written == lines.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

int64_t TraceBuffer::NowMicros() const {
  if (!enabled()) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceSpan::TraceSpan(const char* name, Histogram* latency)
    : name_(name), latency_(latency) {
  Open();
}

TraceSpan::TraceSpan(std::string name, Histogram* latency)
    : name_(std::move(name)), latency_(latency) {
  Open();
}

void TraceSpan::Open() {
  if constexpr (!kObsEnabled) return;
  start_ = std::chrono::steady_clock::now();
  if (!TraceBuffer::Global().enabled()) return;
  traced_ = true;
  parent_id_ = t_ctx.span_id;
  span_id_ = AllocateSpanId();
  // A root span starts a new trace named after itself; children inherit.
  trace_id_ = t_ctx.trace_id != 0 ? t_ctx.trace_id : span_id_;
  t_ctx = TraceContext{trace_id_, span_id_};
}

TraceSpan::~TraceSpan() {
  if constexpr (!kObsEnabled) return;
  auto end = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(end - start_).count();
  if (latency_) latency_->Record(seconds);
  if (traced_) {
    // Restore the parent as the thread's position. The span may close on the
    // thread that opened it (RAII guarantees scope nesting per thread), so a
    // plain restore is enough.
    t_ctx = TraceContext{trace_id_, parent_id_};
    if (parent_id_ == 0) t_ctx = TraceContext{};
  }
  TraceBuffer& buf = TraceBuffer::Global();
  if (buf.enabled()) {
    TraceEvent ev;
    ev.name = std::move(name_);
    ev.trace_id = trace_id_;
    ev.span_id = span_id_;
    ev.parent_id = parent_id_;
    ev.duration_us = static_cast<int64_t>(seconds * 1e6);
    ev.start_us = buf.NowMicros() - ev.duration_us;
    ev.fields = std::move(fields_);
    buf.Record(std::move(ev));
  }
}

void TraceSpan::AddField(const char* key, int64_t value) {
  if constexpr (!kObsEnabled) {
    (void)key;
    (void)value;
    return;
  }
  if (!TraceBuffer::Global().enabled()) return;
  fields_.emplace_back(key, value);
}

double TraceSpan::ElapsedSeconds() const {
  if constexpr (!kObsEnabled) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

namespace {

/// Pulls `"key":` out of one JSON-lines object; returns the value token
/// (string contents unescaped for strings, raw digits for numbers). Only
/// handles the flat shape our own writer produces.
bool ExtractField(const std::string& line, const std::string& key,
                  std::string* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    std::string value;
    for (size_t i = pos + 1; i < line.size(); ++i) {
      char c = line[i];
      if (c == '\\' && i + 1 < line.size()) {
        char n = line[++i];
        switch (n) {
          case 'n': value += '\n'; break;
          case 'r': value += '\r'; break;
          case 't': value += '\t'; break;
          default: value += n; break;  // \" \\ and anything else: literal
        }
        continue;
      }
      if (c == '"') {
        *out = std::move(value);
        return true;
      }
      value += c;
    }
    return false;
  }
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(pos, end - pos);
  return true;
}

bool ExtractInt(const std::string& line, const std::string& key, int64_t* out) {
  std::string token;
  if (!ExtractField(line, key, &token)) return false;
  return ParseInt64(token, out);
}

}  // namespace

bool ParseTraceJsonLines(const std::string& text,
                         std::vector<TraceEvent>* out) {
  bool any = false;
  for (const std::string& raw : Split(text, '\n')) {
    std::string line = std::string(Trim(raw));
    if (line.empty() || line[0] != '{') continue;
    TraceEvent ev;
    if (!ExtractField(line, "name", &ev.name)) continue;
    int64_t v = 0;
    if (ExtractInt(line, "trace", &v)) ev.trace_id = static_cast<uint64_t>(v);
    if (ExtractInt(line, "span", &v)) ev.span_id = static_cast<uint64_t>(v);
    if (ExtractInt(line, "parent", &v)) ev.parent_id = static_cast<uint64_t>(v);
    ExtractInt(line, "start_us", &ev.start_us);
    ExtractInt(line, "dur_us", &ev.duration_us);
    // Every remaining numeric key is a structured field. Walk the object's
    // keys in order so fields render in their original order.
    size_t pos = 0;
    while ((pos = line.find('"', pos)) != std::string::npos) {
      size_t close = line.find('"', pos + 1);
      if (close == std::string::npos) break;
      std::string key = line.substr(pos + 1, close - pos - 1);
      pos = close + 1;
      if (pos >= line.size() || line[pos] != ':') continue;
      if (key == "name" || key == "trace" || key == "span" ||
          key == "parent" || key == "start_us" || key == "dur_us") {
        continue;
      }
      if (ExtractInt(line, key, &v)) ev.fields.emplace_back(key, v);
    }
    out->push_back(std::move(ev));
    any = true;
  }
  return any;
}

std::string RenderTraceTree(const std::vector<TraceEvent>& events) {
  // Index spans by id; group roots by trace. Events are already "oldest
  // emitted first", but tree order follows start_us (spans *close* inner
  // first, which would render backwards).
  std::map<uint64_t, std::vector<size_t>> children;  // parent span -> events
  std::map<uint64_t, std::vector<size_t>> roots;     // trace -> root events
  std::vector<size_t> untraced;
  std::vector<bool> has_parent(events.size(), false);
  std::map<uint64_t, size_t> by_span;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].span_id != 0) by_span[events[i].span_id] = i;
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.trace_id == 0) {
      untraced.push_back(i);
      continue;
    }
    if (ev.parent_id != 0 && by_span.count(ev.parent_id)) {
      children[ev.parent_id].push_back(i);
      has_parent[i] = true;
    } else {
      roots[ev.trace_id].push_back(i);
    }
  }
  auto by_start = [&](size_t a, size_t b) {
    if (events[a].start_us != events[b].start_us) {
      return events[a].start_us < events[b].start_us;
    }
    return events[a].span_id < events[b].span_id;
  };
  for (auto& [_, v] : children) std::sort(v.begin(), v.end(), by_start);
  for (auto& [_, v] : roots) std::sort(v.begin(), v.end(), by_start);

  std::string out;
  // Guards against parent cycles in malformed input (a span whose ancestor
  // chain reaches itself — possible with duplicate span ids): each event
  // renders at most once, so the recursion always terminates.
  std::vector<bool> rendered(events.size(), false);
  auto render_one = [&](size_t i, const std::string& prefix, bool last,
                        bool top, auto&& self) -> void {
    if (rendered[i]) return;
    rendered[i] = true;
    const TraceEvent& ev = events[i];
    if (!top) {
      out += prefix + (last ? "└─ " : "├─ ");
    }
    out += ev.name + "  " + std::to_string(ev.duration_us) + "us";
    out += "  [span " + std::to_string(ev.span_id);
    if (ev.parent_id != 0 && !has_parent[i]) out += ", parent evicted";
    out += "]";
    for (const auto& [key, value] : ev.fields) {
      out += " " + key + "=" + std::to_string(value);
    }
    out += "\n";
    auto it = children.find(ev.span_id);
    if (it == children.end()) return;
    std::string child_prefix =
        top ? std::string() : prefix + (last ? "   " : "│  ");
    for (size_t c = 0; c < it->second.size(); ++c) {
      self(it->second[c], child_prefix, c + 1 == it->second.size(), false,
           self);
    }
  };
  for (const auto& [trace, root_list] : roots) {
    out += "trace " + std::to_string(trace) + "\n";
    for (size_t r = 0; r < root_list.size(); ++r) {
      render_one(root_list[r], "", r + 1 == root_list.size(), true,
                 render_one);
    }
    out += "\n";
  }
  if (!untraced.empty()) {
    out += "(untraced)\n";
    std::vector<size_t> ordered = untraced;
    std::sort(ordered.begin(), ordered.end(), by_start);
    for (size_t i : ordered) {
      out += "  " + events[i].name + "  " +
             std::to_string(events[i].duration_us) + "us\n";
    }
  }
  return out;
}

}  // namespace dwred::obs
