#include "obs/trace.h"

#include <cstdio>

namespace dwred::obs {

TraceBuffer& TraceBuffer::Global() {
  // Leaked for the same static-teardown reason as MetricsRegistry::Global().
  static TraceBuffer* g = new TraceBuffer();
  return *g;
}

void TraceBuffer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, TraceEvent{});
  next_ = 0;
  count_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void TraceBuffer::Disable() {
  enabled_.store(false, std::memory_order_release);
}

void TraceBuffer::Record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event sits at next_ once the ring has wrapped.
  size_t start = count_ == capacity_ ? next_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  count_ = 0;
}

std::string TraceBuffer::DumpJsonLines() const {
  std::string out;
  for (const TraceEvent& ev : Snapshot()) {
    out += "{\"name\":\"" + JsonEscape(ev.name) + "\"";
    out += ",\"start_us\":" + std::to_string(ev.start_us);
    out += ",\"dur_us\":" + std::to_string(ev.duration_us);
    for (const auto& [key, value] : ev.fields) {
      out += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
    }
    out += "}\n";
  }
  return out;
}

bool TraceBuffer::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::string lines = DumpJsonLines();
  size_t written = std::fwrite(lines.data(), 1, lines.size(), f);
  bool ok = written == lines.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

int64_t TraceBuffer::NowMicros() const {
  if (!enabled()) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceSpan::TraceSpan(const char* name, Histogram* latency)
    : name_(name), latency_(latency) {
  if constexpr (kObsEnabled) {
    start_ = std::chrono::steady_clock::now();
  }
}

TraceSpan::~TraceSpan() {
  if constexpr (!kObsEnabled) return;
  auto end = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(end - start_).count();
  if (latency_) latency_->Record(seconds);
  TraceBuffer& buf = TraceBuffer::Global();
  if (buf.enabled()) {
    TraceEvent ev;
    ev.name = name_;
    ev.duration_us = static_cast<int64_t>(seconds * 1e6);
    ev.start_us = buf.NowMicros() - ev.duration_us;
    ev.fields = std::move(fields_);
    buf.Record(std::move(ev));
  }
}

void TraceSpan::AddField(const char* key, int64_t value) {
  if constexpr (!kObsEnabled) {
    (void)key;
    (void)value;
    return;
  }
  if (!TraceBuffer::Global().enabled()) return;
  fields_.emplace_back(key, value);
}

double TraceSpan::ElapsedSeconds() const {
  if constexpr (!kObsEnabled) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace dwred::obs
