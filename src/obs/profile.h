#pragma once

// Request-scoped profiling: EXPLAIN-style operation profiles and the
// always-on flight recorder (docs/OBSERVABILITY.md).
//
// An OpProfile is filled by one engine operation (SubcubeManager::Query,
// Synchronize, Reduce pass) as it runs: pinned epoch, cache outcome and
// fingerprint, per-subcube fan-out, segments scanned vs. pruned, rows
// skipped, and per-stage wall times. Callers pass a profile in when they want
// an EXPLAIN (dwredctl `explain`, tests, library users); passing nullptr
// costs nothing.
//
// The FlightRecorder is always on (bounded, lock-cheap): operations report
// their duration after the fact, and anything at or above the slow threshold
// is admitted into a top-K-by-duration board plus a last-N ring, each entry
// carrying a one-line summary of *why* it was slow (cache miss? pruning
// defeated? wide fan-out?). `dwredctl slowlog` renders both. Sub-threshold
// operations pay one atomic load and a compare — the detail string is only
// built for admitted entries.
//
// Opt-out: set DWRED_PROFILE_DISABLED to a non-empty value to make
// ProfilingEnabled() false; engine call sites then skip profile filling and
// flight recording entirely.
//
// Env knobs (read at first use; ReloadConfigFromEnv() for tests):
//   DWRED_SLOWLOG_TOPK    board size, default 16
//   DWRED_SLOWLOG_LASTN   ring size, default 64
//   DWRED_SLOWLOG_MIN_US  admission threshold in microseconds, default 1000

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dwred::obs {

/// False when the DWRED_PROFILE_DISABLED environment variable is set to a
/// non-empty value (same convention as DWRED_CACHE_DISABLED). Re-read on
/// every call so tests can flip it.
bool ProfilingEnabled();

/// FNV-1a 64-bit — stable, dependency-free fingerprint for cache keys.
uint64_t Fnv1a64(std::string_view s);

/// How the query cache treated this operation.
enum class CacheOutcome {
  kNotApplicable,  ///< operation has no cacheable result (sync, reduce)
  kDisabled,       ///< cache compiled/env'd off for this run
  kMiss,
  kHit,
};

/// One timed stage of an operation (plan / scan / aggregate / materialize...).
struct StageTime {
  std::string name;
  int64_t wall_us = 0;
};

/// Per-subcube slice of a fanned-out operation.
struct SubcubeProfile {
  std::string name;
  int64_t segments_total = 0;
  int64_t segments_scanned = 0;
  int64_t segments_pruned = 0;
  int64_t rows_scanned = 0;
  int64_t rows_skipped = 0;
  int64_t result_facts = 0;
  int64_t wall_us = 0;
};

/// Structured profile of one engine operation. Fill what applies; Render()
/// omits what was never set.
struct OpProfile {
  std::string op;            ///< "subcube.query", "subcube.sync", "reduce.pass"
  uint64_t trace_id = 0;     ///< links to the span tree when tracing is on
  uint64_t epoch = 0;        ///< pinned warehouse epoch
  CacheOutcome cache = CacheOutcome::kNotApplicable;
  uint64_t fingerprint = 0;  ///< FNV-1a of the canonical cache key (0: none)
  int64_t now_day = 0;
  bool assume_synchronized = false;
  bool parallel = false;
  bool compiled = false;     ///< predicate ran as VM bytecode (src/vm)
  int64_t fan_out = 0;       ///< subcubes (or shards) the op fanned out to

  // Scan-layer attribution. On the pruned path these sum the per-subcube
  // ScanPlans and therefore match the dwred_scan_segments_* /
  // dwred_scan_rows_skipped counter deltas exactly.
  int64_t segments_total = 0;
  int64_t segments_scanned = 0;
  int64_t segments_pruned = 0;
  int64_t rows_scanned = 0;
  int64_t rows_skipped = 0;
  int64_t result_facts = 0;

  /// How the operation ended: "ok", "cancelled", "deadline_exceeded",
  /// "resource_exhausted", or "error" (runtime::OutcomeLabel). Abort paths
  /// fill the profile too, so EXPLAIN and the flight recorder show *why* an
  /// operation produced nothing.
  std::string outcome = "ok";
  int64_t budget_max_rows = 0;      ///< row budget in force (0 = unlimited)
  int64_t budget_rows_charged = 0;  ///< rows charged against it

  std::vector<StageTime> stages;
  std::vector<SubcubeProfile> subcubes;
  /// Op-specific extras (sync: rows migrated/deleted; reduce: cells, etc.).
  std::vector<std::pair<std::string, int64_t>> counters;
  int64_t total_us = 0;

  void AddStage(std::string name, int64_t wall_us) {
    stages.push_back({std::move(name), wall_us});
  }
  void AddCounter(std::string name, int64_t value) {
    counters.emplace_back(std::move(name), value);
  }

  /// Multi-line EXPLAIN text (dwredctl `explain`).
  std::string Render() const;
  /// One JSON object, flat except stages/subcubes arrays.
  std::string ToJson() const;
  /// One-line digest for the flight recorder ("cache=miss epoch=7
  /// segments=1/38 ...").
  std::string Summary() const;
};

/// Restartable stage stopwatch: LapMicros() returns the time since the last
/// lap (or construction) and restarts.
class StageTimer {
 public:
  StageTimer() : last_(std::chrono::steady_clock::now()) {}

  int64_t LapMicros() {
    auto now = std::chrono::steady_clock::now();
    int64_t us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - last_)
            .count();
    last_ = now;
    return us;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

/// The per-operation latency histogram `dwred_op_<op>_seconds` ('.' and other
/// non-metric characters sanitized to '_'). Registered on first use; call
/// sites cache the reference in a function-local static.
Histogram& OpLatencyHistogram(const std::string& op);

/// One admitted slow-operation record.
struct FlightEntry {
  uint64_t seq = 0;  ///< admission order, process-wide
  std::string op;
  uint64_t trace_id = 0;
  int64_t wall_us = 0;
  std::string detail;  ///< OpProfile::Summary() at admission time
};

/// Always-on bounded slow-query log: top-K by duration plus a last-N ring of
/// everything at/above the threshold. Thread-safe; the sub-threshold fast
/// path is one atomic load.
class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Admits `profile` if profile.total_us >= the threshold. Cheap otherwise.
  void Record(const OpProfile& profile);

  /// True when an operation of this duration would be admitted (fast path —
  /// callers skip building OpProfile summaries entirely below the threshold).
  bool WouldRecord(int64_t wall_us) const {
    return wall_us >= min_us_.load(std::memory_order_relaxed);
  }

  /// `dwredctl slowlog` text: the board (slowest first) then the ring
  /// (most recent first).
  std::string Render() const;
  std::string RenderJson() const;

  std::vector<FlightEntry> TopK() const;
  std::vector<FlightEntry> LastN() const;

  void Clear();
  /// Re-reads DWRED_SLOWLOG_{TOPK,LASTN,MIN_US}. Does not drop entries.
  void ReloadConfigFromEnv();

  int64_t threshold_us() const {
    return min_us_.load(std::memory_order_relaxed);
  }

 private:
  FlightRecorder() { ReloadConfigFromEnv(); }

  mutable std::mutex mu_;
  std::atomic<int64_t> min_us_{1000};
  size_t topk_ = 16;    ///< guarded by mu_
  size_t lastn_ = 64;   ///< guarded by mu_
  uint64_t seq_ = 0;    ///< guarded by mu_
  std::vector<FlightEntry> board_;  ///< sorted slowest-first, <= topk_
  std::deque<FlightEntry> ring_;    ///< oldest-first, <= lastn_
};

}  // namespace dwred::obs
