#pragma once

// The algebraic query operators over (possibly reduced) MOs — paper
// Section 6: selection with the conservative/liberal/weighted approaches
// (eq. (36)), projection (eq. (37)), and aggregate formation (Definition 6)
// with the availability approach (default), plus the strict and LUB
// approaches the paper enumerates. The disaggregated approach (imprecise
// answers via disaggregation, ref [13] of the paper) is out of scope and
// documented as such.

#include "query/compare.h"
#include "spec/action.h"

namespace dwred {

/// Result of a selection: the restricted MO and, under the weighted
/// approach, one certainty weight per returned fact.
struct SelectionResult {
  MultidimensionalObject mo;
  std::vector<double> weights;  ///< empty unless weighted
};

/// σ[p](O): facts characterized by values satisfying p, under the given
/// approach. Fact names, provenance and responsible actions are preserved.
Result<SelectionResult> Select(const MultidimensionalObject& mo,
                               const PredExpr& pred, int64_t now_day,
                               SelectionApproach approach =
                                   SelectionApproach::kConservative);

/// π[dims][measures](O): retains the given dimensions and measures; the fact
/// set is unchanged (duplicate value combinations are kept, as in star
/// schemas).
Result<MultidimensionalObject> Project(const MultidimensionalObject& mo,
                                       const std::vector<DimensionId>& dims,
                                       const std::vector<MeasureId>& measures);

/// How aggregate formation treats facts already above the requested level
/// (paper Section 6.3).
enum class AggregationApproach : uint8_t {
  kAvailability,  ///< aggregate each fact to the finest available level >= desired
  kStrict,        ///< drop facts above the desired level
  kLub,           ///< aggregate everything to the LUB of desired + available
  /// Split facts above the desired level uniformly across their materialized
  /// descendant cells at that level. Answers have the requested granularity
  /// but are *imprecise* (the paper's fourth approach): SUM measures are
  /// split with exact integer totals (remainders go to the leading cells);
  /// MIN/MAX are copied, which can only widen their true range. Facts with
  /// no materialized descendants fall back to the availability behaviour.
  kDisaggregated,
};

const char* AggregationApproachName(AggregationApproach a);

/// α[C_1j1, ..., C_njn](O) (Definition 6): groups facts by their values at
/// the requested granularity — facts mapped directly to higher-granularity
/// values group at those values (Group_high) — and folds measures with their
/// default aggregate functions.
Result<MultidimensionalObject> AggregateFormation(
    const MultidimensionalObject& mo, const std::vector<CategoryId>& target,
    AggregationApproach approach = AggregationApproach::kAvailability,
    bool track_provenance = true);

/// The paper's Group_high (eq. (38)), exposed for tests: all facts
/// characterized by every value of `cell` and mapped *directly* to those cell
/// values whose category exceeds the target granularity.
std::vector<FactId> GroupHigh(const MultidimensionalObject& mo,
                              std::span<const ValueId> cell,
                              std::span<const CategoryId> target);

}  // namespace dwred
