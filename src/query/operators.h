#pragma once

// The algebraic query operators over (possibly reduced) MOs — paper
// Section 6: selection with the conservative/liberal/weighted approaches
// (eq. (36)), projection (eq. (37)), and aggregate formation (Definition 6)
// with the availability approach (default), plus the strict and LUB
// approaches the paper enumerates. The disaggregated approach (imprecise
// answers via disaggregation, ref [13] of the paper) is out of scope and
// documented as such.

#include "query/compare.h"
#include "spec/action.h"
#include "vm/compiled_scan.h"

namespace dwred {

/// Result of a selection: the restricted MO and, under the weighted
/// approach, one certainty weight per returned fact.
struct SelectionResult {
  MultidimensionalObject mo;
  std::vector<double> weights;  ///< empty unless weighted
};

/// σ[p](O): facts characterized by values satisfying p, under the given
/// approach. Fact names, provenance and responsible actions are preserved.
/// A non-null `compiled` (a vm::PredProgram of `pred` under `approach` at
/// `now_day`) replaces the per-fact tree walk with bytecode table lookups;
/// results are byte-identical either way (docs/COMPILATION.md).
Result<SelectionResult> Select(const MultidimensionalObject& mo,
                               const PredExpr& pred, int64_t now_day,
                               SelectionApproach approach =
                                   SelectionApproach::kConservative,
                               const std::shared_ptr<const vm::PredProgram>&
                                   compiled = nullptr);

/// The fused scan-and-select of the pruned query path: evaluates σ[pred]
/// directly over the plan's rows of a fact table, skipping the intermediate
/// MaterializeMO copy. Byte-identical to
/// Select(MaterializeMO(t, plan, ...), pred, ...): facts are emitted in
/// ascending logical row order under their table-scan names
/// ("fact_<logical row>"), so output does not depend on pruning or thread
/// count. `compiled` as in Select.
/// `materialize_names` (default true) stores the "fact_<row>" display names
/// Select over MaterializeMO would have produced. Callers that immediately
/// aggregate the selection — which rebuilds facts and discards names — pass
/// false to skip the per-survivor string materialization; result *query*
/// bytes are unchanged because the intermediate MO never escapes.
Result<SelectionResult> SelectFromScan(
    const FactTable& t, const scan::ScanPlan& plan, const PredExpr& pred,
    int64_t now_day, SelectionApproach approach, const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures,
    const std::shared_ptr<const vm::PredProgram>& compiled = nullptr,
    bool materialize_names = true);

/// π[dims][measures](O): retains the given dimensions and measures; the fact
/// set is unchanged (duplicate value combinations are kept, as in star
/// schemas).
Result<MultidimensionalObject> Project(const MultidimensionalObject& mo,
                                       const std::vector<DimensionId>& dims,
                                       const std::vector<MeasureId>& measures);

/// How aggregate formation treats facts already above the requested level
/// (paper Section 6.3).
enum class AggregationApproach : uint8_t {
  kAvailability,  ///< aggregate each fact to the finest available level >= desired
  kStrict,        ///< drop facts above the desired level
  kLub,           ///< aggregate everything to the LUB of desired + available
  /// Split facts above the desired level uniformly across their materialized
  /// descendant cells at that level. Answers have the requested granularity
  /// but are *imprecise* (the paper's fourth approach): SUM measures are
  /// split with exact integer totals (remainders go to the leading cells);
  /// MIN/MAX are copied, which can only widen their true range. Facts with
  /// no materialized descendants fall back to the availability behaviour.
  kDisaggregated,
};

const char* AggregationApproachName(AggregationApproach a);

/// α[C_1j1, ..., C_njn](O) (Definition 6): groups facts by their values at
/// the requested granularity — facts mapped directly to higher-granularity
/// values group at those values (Group_high) — and folds measures with their
/// default aggregate functions.
/// `rollup` optionally supplies the per-dimension rollup tables compiled for
/// `target` (vm::RollupProgram, cached per epoch+granularity by the subcube
/// manager); ignored under the LUB approach, whose effective categories are
/// data-dependent. When absent the walk is table-compiled locally only if
/// the fact count amortizes the compilation, else evaluated per fact.
Result<MultidimensionalObject> AggregateFormation(
    const MultidimensionalObject& mo, const std::vector<CategoryId>& target,
    AggregationApproach approach = AggregationApproach::kAvailability,
    bool track_provenance = true,
    const std::shared_ptr<const vm::RollupProgram>& rollup = nullptr);

/// The fully fused σ→α of the compiled query path: selection weights are
/// computed over the plan's rows and each surviving row's rolled-up cell is
/// folded straight into its output group, skipping the intermediate
/// selection MO entirely. Byte-identical to
///   AggregateFormation(SelectFromScan(t, plan, pred, now_day, approach,
///                      ..., compiled, /*materialize_names=*/false).mo,
///                      target, kAvailability, /*track_provenance=*/false,
///                      rollup)
/// because rows are visited in the same ascending logical order, so group
/// discovery order and measure fold order are unchanged
/// (docs/COMPILATION.md). Availability approach only — the only one the
/// subcube query path combines with. `rollup` may be null (per-row walks).
Result<MultidimensionalObject> AggregateFromScan(
    const FactTable& t, const scan::ScanPlan& plan, const PredExpr& pred,
    int64_t now_day, SelectionApproach approach, const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures,
    const std::vector<CategoryId>& target,
    const std::shared_ptr<const vm::PredProgram>& compiled,
    const std::shared_ptr<const vm::RollupProgram>& rollup);

/// The paper's Group_high (eq. (38)), exposed for tests: all facts
/// characterized by every value of `cell` and mapped *directly* to those cell
/// values whose category exceeds the target granularity.
std::vector<FactId> GroupHigh(const MultidimensionalObject& mo,
                              std::span<const ValueId> cell,
                              std::span<const CategoryId> target);

}  // namespace dwred
