#include "query/compare.h"

#include <algorithm>

#include "common/check.h"

namespace dwred {

const char* SelectionApproachName(SelectionApproach a) {
  switch (a) {
    case SelectionApproach::kConservative: return "conservative";
    case SelectionApproach::kLiberal: return "liberal";
    case SelectionApproach::kWeighted: return "weighted";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Exact path: the fact's value rolls up to the atom's category.
// ---------------------------------------------------------------------------

double EvalExact(const Atom& atom, const Dimension& dim, ValueId at_cat,
                 int64_t now_day) {
  if (atom.is_time) {
    TimeUnit unit = static_cast<TimeUnit>(atom.category);
    TimeGranule v = dim.granule(at_cat);
    if (atom.op == CmpOp::kIn || atom.op == CmpOp::kNotIn) {
      bool found = false;
      for (const TimeOperand& o : atom.time_operands) {
        if (o.Resolve(now_day, unit) == v) {
          found = true;
          break;
        }
      }
      return (atom.op == CmpOp::kIn) == found ? 1.0 : 0.0;
    }
    TimeGranule b = atom.time_operands[0].Resolve(now_day, unit);
    bool r = false;
    switch (atom.op) {
      case CmpOp::kLt: r = v.index < b.index; break;
      case CmpOp::kLe: r = v.index <= b.index; break;
      case CmpOp::kGt: r = v.index > b.index; break;
      case CmpOp::kGe: r = v.index >= b.index; break;
      case CmpOp::kEq: r = v.index == b.index; break;
      case CmpOp::kNe: r = v.index != b.index; break;
      default: break;
    }
    return r ? 1.0 : 0.0;
  }
  bool r = false;
  switch (atom.op) {
    case CmpOp::kEq: r = at_cat == atom.values[0]; break;
    case CmpOp::kNe: r = at_cat != atom.values[0]; break;
    case CmpOp::kIn:
      r = std::binary_search(atom.values.begin(), atom.values.end(), at_cat);
      break;
    case CmpOp::kNotIn:
      r = !std::binary_search(atom.values.begin(), atom.values.end(), at_cat);
      break;
    default:
      DWRED_CHECK_MSG(false, "ordered comparison on categorical dimension");
  }
  return r ? 1.0 : 0.0;
}

// ---------------------------------------------------------------------------
// Definition 5 path: drill both sides to the GLB category.
// ---------------------------------------------------------------------------

/// Sorted, merged index ranges at the GLB granularity.
struct Ranges {
  std::vector<std::pair<int64_t, int64_t>> rs;

  int64_t lo() const { return rs.front().first; }
  int64_t hi() const { return rs.back().second; }
  bool Contains(int64_t x) const {
    for (const auto& [a, b] : rs) {
      if (x < a) return false;
      if (x <= b) return true;
    }
    return false;
  }
  int64_t Count() const {
    int64_t n = 0;
    for (const auto& [a, b] : rs) n += b - a + 1;
    return n;
  }
  void Merge() {
    std::sort(rs.begin(), rs.end());
    std::vector<std::pair<int64_t, int64_t>> out;
    for (const auto& r : rs) {
      if (!out.empty() && r.first <= out.back().second + 1) {
        out.back().second = std::max(out.back().second, r.second);
      } else {
        out.push_back(r);
      }
    }
    rs = std::move(out);
  }
};

/// The time atom's operand drill-down at `unit`: calendar index ranges.
Ranges OperandRanges(const Atom& atom, TimeUnit unit, int64_t now_day) {
  TimeUnit atom_unit = static_cast<TimeUnit>(atom.category);
  Ranges out;
  for (const TimeOperand& o : atom.time_operands) {
    TimeGranule g = o.Resolve(now_day, atom_unit);
    out.rs.emplace_back(GranuleOfDay(FirstDayOf(g), unit).index,
                        GranuleOfDay(LastDayOf(g), unit).index);
  }
  out.Merge();
  return out;
}

/// The fact value's drill-down at the GLB category: indices of *materialized*
/// time values (as in the paper's examples, where week 1999W48 "consists of
/// only one day").
std::vector<int64_t> FactTimeDrill(const Dimension& dim, ValueId v,
                                   CategoryId glb_cat) {
  std::vector<int64_t> out;
  if (dim.value_category(v) == glb_cat) {
    out.push_back(dim.granule(v).index);
    return out;
  }
  for (ValueId u : dim.DrillDown(v, glb_cat)) {
    out.push_back(dim.granule(u).index);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double EvalTimeDef5(const Atom& atom, const Dimension& dim, ValueId v,
                    int64_t now_day, SelectionApproach ap) {
  CategoryId glb_cat = dim.type().Glb(dim.value_category(v), atom.category);
  TimeUnit unit = static_cast<TimeUnit>(glb_cat);
  std::vector<int64_t> A = FactTimeDrill(dim, v, glb_cat);
  if (A.empty()) return 0.0;
  Ranges B = OperandRanges(atom, unit, now_day);
  if (B.rs.empty()) return 0.0;

  auto count_if = [&](auto pred) {
    int64_t n = 0;
    for (int64_t a : A) {
      if (pred(a)) ++n;
    }
    return n;
  };
  const double sz = static_cast<double>(A.size());

  switch (atom.op) {
    case CmpOp::kLt:
      switch (ap) {
        case SelectionApproach::kConservative: return A.back() < B.lo();
        case SelectionApproach::kLiberal: return A.front() < B.hi();
        case SelectionApproach::kWeighted:
          return count_if([&](int64_t a) { return a < B.lo(); }) / sz;
      }
      break;
    case CmpOp::kLe:
      switch (ap) {
        case SelectionApproach::kConservative: return A.back() <= B.hi();
        case SelectionApproach::kLiberal: return A.front() <= B.hi();
        case SelectionApproach::kWeighted:
          return count_if([&](int64_t a) { return a <= B.hi(); }) / sz;
      }
      break;
    case CmpOp::kGt:
      switch (ap) {
        case SelectionApproach::kConservative: return A.front() > B.hi();
        case SelectionApproach::kLiberal: return A.back() > B.lo();
        case SelectionApproach::kWeighted:
          return count_if([&](int64_t a) { return a > B.hi(); }) / sz;
      }
      break;
    case CmpOp::kGe:
      switch (ap) {
        case SelectionApproach::kConservative: return A.front() >= B.lo();
        case SelectionApproach::kLiberal: return A.back() >= B.lo();
        case SelectionApproach::kWeighted:
          return count_if([&](int64_t a) { return a >= B.lo(); }) / sz;
      }
      break;
    case CmpOp::kEq: {
      bool identical = static_cast<int64_t>(A.size()) == B.Count() &&
                       A.front() == B.lo() && A.back() == B.hi();
      double frac = count_if([&](int64_t a) { return B.Contains(a); }) / sz;
      switch (ap) {
        case SelectionApproach::kConservative: return identical;
        case SelectionApproach::kLiberal: return frac > 0.0;
        case SelectionApproach::kWeighted: return frac;
      }
      break;
    }
    case CmpOp::kNe: {
      // Conservative: certainly different — drill-downs disjoint. Liberal:
      // possibly different — not a single identical point. (Definition 5's
      // literal set-inequality reading is the liberal variant; see compare.h.)
      double frac = count_if([&](int64_t a) { return B.Contains(a); }) / sz;
      switch (ap) {
        case SelectionApproach::kConservative: return frac == 0.0;
        case SelectionApproach::kLiberal:
          return !(A.size() == 1 && B.Count() == 1 && A.front() == B.lo());
        case SelectionApproach::kWeighted: return 1.0 - frac;
      }
      break;
    }
    case CmpOp::kIn: {
      double frac = count_if([&](int64_t a) { return B.Contains(a); }) / sz;
      switch (ap) {
        case SelectionApproach::kConservative: return frac == 1.0;
        case SelectionApproach::kLiberal: return frac > 0.0;
        case SelectionApproach::kWeighted: return frac;
      }
      break;
    }
    case CmpOp::kNotIn: {
      double frac = count_if([&](int64_t a) { return B.Contains(a); }) / sz;
      switch (ap) {
        case SelectionApproach::kConservative: return frac == 0.0;
        case SelectionApproach::kLiberal: return frac < 1.0;
        case SelectionApproach::kWeighted: return 1.0 - frac;
      }
      break;
    }
  }
  return 0.0;
}

double EvalCatDef5(const Atom& atom, const Dimension& dim, ValueId v,
                   SelectionApproach ap) {
  CategoryId glb_cat = dim.type().Glb(dim.value_category(v), atom.category);
  std::vector<ValueId> A = dim.DrillDown(v, glb_cat);
  if (dim.value_category(v) == glb_cat) A = {v};
  if (A.empty()) return 0.0;
  std::vector<ValueId> B;
  for (ValueId lit : atom.values) {
    if (dim.value_category(lit) == glb_cat) {
      B.push_back(lit);
    } else {
      const auto& dd = dim.DrillDown(lit, glb_cat);
      B.insert(B.end(), dd.begin(), dd.end());
    }
  }
  std::sort(B.begin(), B.end());
  B.erase(std::unique(B.begin(), B.end()), B.end());

  int64_t inter = 0;
  for (ValueId a : A) {
    if (std::binary_search(B.begin(), B.end(), a)) ++inter;
  }
  const double frac = inter / static_cast<double>(A.size());
  const bool identical = A.size() == B.size() &&
                         static_cast<size_t>(inter) == A.size();

  bool positive = atom.op == CmpOp::kEq || atom.op == CmpOp::kIn;
  if (positive) {
    switch (ap) {
      case SelectionApproach::kConservative:
        return atom.op == CmpOp::kEq ? identical : frac == 1.0;
      case SelectionApproach::kLiberal: return frac > 0.0;
      case SelectionApproach::kWeighted: return frac;
    }
  } else {  // kNe, kNotIn
    switch (ap) {
      case SelectionApproach::kConservative: return frac == 0.0;
      case SelectionApproach::kLiberal:
        return !(A.size() == 1 && B.size() == 1 && A[0] == B[0]);
      case SelectionApproach::kWeighted: return 1.0 - frac;
    }
  }
  return 0.0;
}

}  // namespace

double EvalQueryAtomOnValue(const Atom& atom, const Dimension& dim, ValueId v,
                            int64_t now_day, SelectionApproach ap) {
  CategoryId cf = dim.value_category(v);
  if (dim.type().Leq(cf, atom.category)) {
    ValueId at_cat = dim.Rollup(v, atom.category);
    DWRED_CHECK(at_cat != kInvalidValue);
    return EvalExact(atom, dim, at_cat, now_day);
  }
  // Reduced (higher or parallel) granularity: Definition 5.
  return atom.is_time ? EvalTimeDef5(atom, dim, v, now_day, ap)
                      : EvalCatDef5(atom, dim, v, ap);
}

double EvalQueryAtomOnFact(const Atom& atom, const MultidimensionalObject& mo,
                           FactId f, int64_t now_day, SelectionApproach ap) {
  return EvalQueryAtomOnValue(atom, *mo.dimension(atom.dim),
                              mo.Coord(f, atom.dim), now_day, ap);
}

double EvalQueryPredOnFact(const PredExpr& e, const MultidimensionalObject& mo,
                           FactId f, int64_t now_day, SelectionApproach ap) {
  switch (e.kind) {
    case PredExpr::Kind::kTrue: return 1.0;
    case PredExpr::Kind::kFalse: return 0.0;
    case PredExpr::Kind::kAtom:
      return EvalQueryAtomOnFact(e.atom, mo, f, now_day, ap);
    case PredExpr::Kind::kNot:
      return 1.0 - EvalQueryPredOnFact(*e.kids[0], mo, f, now_day, ap);
    case PredExpr::Kind::kAnd: {
      double w = 1.0;
      for (const auto& k : e.kids) {
        w *= EvalQueryPredOnFact(*k, mo, f, now_day, ap);
        if (w == 0.0) break;
      }
      return w;
    }
    case PredExpr::Kind::kOr: {
      double w = 0.0;
      for (const auto& k : e.kids) {
        w = std::max(w, EvalQueryPredOnFact(*k, mo, f, now_day, ap));
        if (w == 1.0) break;
      }
      return w;
    }
  }
  return 0.0;
}

scan::AtomOracle LiberalScanOracle(int64_t now_day) {
  return [now_day](const Atom& a, const Dimension& dim, ValueId v) {
    return EvalQueryAtomOnValue(a, dim, v, now_day, SelectionApproach::kLiberal);
  };
}

scan::AtomOracle QueryAtomOracle(int64_t now_day, SelectionApproach ap) {
  return [now_day, ap](const Atom& a, const Dimension& dim, ValueId v) {
    return EvalQueryAtomOnValue(a, dim, v, now_day, ap);
  };
}

double EvalQueryPredOnCoords(
    const PredExpr& e, const std::vector<std::shared_ptr<Dimension>>& dims,
    const ValueId* coords, int64_t now_day, SelectionApproach ap) {
  switch (e.kind) {
    case PredExpr::Kind::kTrue: return 1.0;
    case PredExpr::Kind::kFalse: return 0.0;
    case PredExpr::Kind::kAtom:
      return EvalQueryAtomOnValue(e.atom, *dims[e.atom.dim],
                                  coords[e.atom.dim], now_day, ap);
    case PredExpr::Kind::kNot:
      return 1.0 - EvalQueryPredOnCoords(*e.kids[0], dims, coords, now_day, ap);
    case PredExpr::Kind::kAnd: {
      double w = 1.0;
      for (const auto& k : e.kids) {
        w *= EvalQueryPredOnCoords(*k, dims, coords, now_day, ap);
        if (w == 0.0) break;
      }
      return w;
    }
    case PredExpr::Kind::kOr: {
      double w = 0.0;
      for (const auto& k : e.kids) {
        w = std::max(w, EvalQueryPredOnCoords(*k, dims, coords, now_day, ap));
        if (w == 1.0) break;
      }
      return w;
    }
  }
  return 0.0;
}

}  // namespace dwred
