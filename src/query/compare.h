#pragma once

// Mixed-granularity comparison semantics (paper Section 6.1, Definition 5)
// and the three selection approaches.
//
// When a fact's available value sits at or below the category a predicate
// atom names, the comparison is exact: roll the value up and compare (this is
// the ordinary f ~> v characterization of eq. (36)). When reduction has left
// the fact at a *higher* or parallel category, both sides are drilled down to
// their categories' greatest lower bound and compared setwise:
//
//   conservative  — the fact is returned only if the comparison is certain
//                   (paper's default for warehouses);
//   liberal       — returned if the comparison is possible;
//   weighted      — returned with the fraction of drill-down values that
//                   satisfy the comparison.
//
// Per Definition 5: strict inequalities quantify ∀∀, reflexive ones ∀∃,
// equality compares the drill-down sets for identity, and ∈ requires every
// drill-down value to be matched inside the set's drill-down. (As in the
// paper's examples, the fact side drills down to the *materialized* dimension
// values; a time literal's drill-down is its calendar range.)

#include "scan/scan.h"
#include "spec/predicate.h"

namespace dwred {

/// How selection treats facts whose granularity exceeds the predicate's.
enum class SelectionApproach : uint8_t {
  kConservative,
  kLiberal,
  kWeighted,
};

const char* SelectionApproachName(SelectionApproach a);

/// Evaluates one query atom on a single dimension value (the fact's
/// coordinate on the atom's dimension — atoms only ever inspect that one
/// coordinate). Returns the satisfaction weight: 0 / 1 under conservative and
/// liberal, a fraction in [0, 1] under weighted. The scan planner
/// (src/scan) uses the liberal form as its may-match oracle when deriving
/// zone-map filters.
double EvalQueryAtomOnValue(const Atom& atom, const Dimension& dim, ValueId v,
                            int64_t now_day, SelectionApproach ap);

/// Evaluates one query atom on a fact. Returns the satisfaction weight:
/// 0 / 1 under conservative and liberal, a fraction in [0, 1] under weighted.
double EvalQueryAtomOnFact(const Atom& atom, const MultidimensionalObject& mo,
                           FactId f, int64_t now_day, SelectionApproach ap);

/// Evaluates a predicate tree on a fact. Boolean connectives combine weights
/// as product (AND), max (OR) and complement (NOT); under conservative and
/// liberal these coincide with ordinary boolean evaluation.
double EvalQueryPredOnFact(const PredExpr& e, const MultidimensionalObject& mo,
                           FactId f, int64_t now_day, SelectionApproach ap);

/// The liberal atom evaluator bound as a scan-layer may-match oracle with
/// `now_day` baked in — the one oracle every ScanSpec compilation must use
/// (subcube query pruning, the spec cache, tests). Liberal dominates
/// conservative and weighted, so pruning with it stays sound for all three
/// selection approaches.
scan::AtomOracle LiberalScanOracle(int64_t now_day);

/// EvalQueryAtomOnValue bound as an atom oracle under an arbitrary approach —
/// the table builder for vm::PredProgram compilation (docs/COMPILATION.md).
scan::AtomOracle QueryAtomOracle(int64_t now_day, SelectionApproach ap);

/// Evaluates a predicate tree on a bare direct cell (one ValueId per
/// dimension of `dims`). Identical fold order and short-circuiting to
/// EvalQueryPredOnFact — the per-row interpreter fallback for compiled scans
/// over fact tables, where no MO exists.
double EvalQueryPredOnCoords(const PredExpr& e,
                             const std::vector<std::shared_ptr<Dimension>>& dims,
                             const ValueId* coords, int64_t now_day,
                             SelectionApproach ap);

}  // namespace dwred
