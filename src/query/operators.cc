#include "query/operators.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scan/scan.h"
#include "storage/column.h"
#include "storage/fact_table.h"

namespace dwred {

namespace {

/// True when no row of [first, first + n) carries positive weight — the
/// late-materialization test that lets phase 2 skip decoding whole chunks.
bool NoSurvivors(const std::vector<double>& weights, RowId first, size_t n) {
  const double* w = weights.data() + first;
  for (size_t i = 0; i < n; ++i) {
    if (w[i] > 0.0) return false;
  }
  return true;
}

/// Bit offset of each dimension in a 64-bit packed cell key, or nullopt when
/// the dimensions' interned-value ranges do not fit 64 bits together. Packing
/// is injective (every cell coordinate is an interned ValueId of its
/// dimension, so it fits its field), which is what lets the columnar fused
/// fold group by one integer instead of a heap vector.
std::optional<std::vector<int>> PackedCellShifts(
    const std::vector<std::shared_ptr<Dimension>>& dims) {
  std::vector<int> shifts(dims.size());
  int used = 0;
  for (size_t d = 0; d < dims.size(); ++d) {
    shifts[d] = used;
    used += std::bit_width(dims[d]->num_values() | 1);
    if (used > 64) return std::nullopt;
  }
  return shifts;
}

/// Open-addressing map from packed cell key to output FactId — the hot probe
/// of the columnar σ→α fold. Linear probing over a power-of-two table; the
/// caller assigns Slot() its group's fact id on first occurrence, so group
/// creation order (and therefore output bytes) is identical to the
/// vector-keyed map it replaces.
class PackedGroupIndex {
 public:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  PackedGroupIndex() : keys_(1024), ids_(1024, kEmpty), mask_(1023) {}

  /// The id slot for `key` (kEmpty when unseen). References are invalidated
  /// by the next Slot() call.
  uint32_t& Slot(uint64_t key) {
    if ((count_ + 1) * 4 >= keys_.size() * 3) Grow();
    size_t i = Hash(key) & mask_;
    while (ids_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask_;
    if (ids_[i] == kEmpty) {
      keys_[i] = key;
      ++count_;
    }
    return ids_[i];
  }

 private:
  static size_t Hash(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_ids = std::move(ids_);
    keys_.assign(old_keys.size() * 2, 0);
    ids_.assign(old_ids.size() * 2, kEmpty);
    mask_ = keys_.size() - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_ids[i] == kEmpty) continue;
      size_t j = Hash(old_keys[i]) & mask_;
      while (ids_[j] != kEmpty) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      ids_[j] = old_ids[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> ids_;
  size_t mask_;
  size_t count_ = 0;
};

}  // namespace

const char* AggregationApproachName(AggregationApproach a) {
  switch (a) {
    case AggregationApproach::kAvailability: return "availability";
    case AggregationApproach::kStrict: return "strict";
    case AggregationApproach::kLub: return "LUB";
    case AggregationApproach::kDisaggregated: return "disaggregated";
  }
  return "?";
}

Result<SelectionResult> Select(const MultidimensionalObject& mo,
                               const PredExpr& pred, int64_t now_day,
                               SelectionApproach approach,
                               const std::shared_ptr<const vm::PredProgram>&
                                   compiled) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& select_latency = registry.GetHistogram(
      "dwred_query_select_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one selection operator evaluation (Section 6)");
  static obs::Counter& c_selects =
      registry.GetCounter("dwred_query_selects", "selection operators run");
  obs::TraceSpan span("query.select", &select_latency);
  c_selects.Increment();
  span.AddField("facts_in", static_cast<int64_t>(mo.num_facts()));
  SelectionResult out{MultidimensionalObject(mo.fact_type(), mo.dimensions(),
                                             mo.measure_types()),
                      {}};

  // Predicate evaluation is independent per fact, so it shards over fact
  // ranges; the output MO is then built serially in fact order from the
  // precomputed weights, which keeps the result byte-identical at every
  // thread count (docs/PARALLELISM.md).
  std::vector<double> weights(mo.num_facts());
  if (compiled != nullptr) {
    vm::CompiledScan cs(compiled, [&](const ValueId* c) {
      return EvalQueryPredOnCoords(pred, mo.dimensions(), c, now_day, approach);
    });
    cs.WeighMo(mo, &weights);
  } else {
    scan::Execute(scan::PlanMoScan(mo.num_facts(), /*grain=*/512),
                  [&](size_t, size_t begin, size_t end) {
                    for (FactId f = begin; f < end; ++f) {
                      weights[f] =
                          EvalQueryPredOnFact(pred, mo, f, now_day, approach);
                    }
                  });
  }

  size_t survivors = 0;
  for (double w : weights) survivors += w > 0.0 ? 1 : 0;
  out.mo.ReserveFacts(survivors);
  if (approach == SelectionApproach::kWeighted) out.weights.reserve(survivors);
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    double w = weights[f];
    if (w <= 0.0) continue;
    // Source coordinates were validated when `mo` was built and the schemas
    // are identical, so the survivors append unchecked.
    FactId nf = out.mo.AppendFactUnchecked(mo.FactCoords(f), mo.FactMeasures(f));
    out.mo.SetFactName(nf, mo.FactName(f));
    if (const std::vector<FactId>* prov = mo.Provenance(f)) {
      out.mo.SetProvenance(nf, *prov, mo.ResponsibleAction(f));
    }
    if (approach == SelectionApproach::kWeighted) out.weights.push_back(w);
  }
  return out;
}

Result<SelectionResult> SelectFromScan(
    const FactTable& t, const scan::ScanPlan& plan, const PredExpr& pred,
    int64_t now_day, SelectionApproach approach, const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures,
    const std::shared_ptr<const vm::PredProgram>& compiled,
    bool materialize_names) {
  DWRED_CHECK(dims.size() == t.num_dims());
  DWRED_CHECK(measures.size() == t.num_measures());
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& select_latency = registry.GetHistogram(
      "dwred_query_select_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one selection operator evaluation (Section 6)");
  static obs::Counter& c_selects =
      registry.GetCounter("dwred_query_selects", "selection operators run");
  obs::TraceSpan span("query.select", &select_latency);
  c_selects.Increment();
  size_t facts_in = 0;
  for (const exec::Shard& u : plan.units) facts_in += u.end - u.begin;
  span.AddField("facts_in", static_cast<int64_t>(facts_in));

  // Same two-phase shape as Select: shard-parallel weights indexed by
  // logical row id, then a serial ascending materialization of the
  // survivors. Rows in pruned segments keep weight 0 — ScanSpec pruning is
  // sound for every approach — so output bytes match the unpruned pipeline.
  std::vector<double> weights;
  vm::CompiledScan cs(compiled, [&](const ValueId* c) {
    return EvalQueryPredOnCoords(pred, dims, c, now_day, approach);
  });
  cs.WeighTable(t, plan, &weights);

  SelectionResult out{MultidimensionalObject(fact_type, dims, measures), {}};
  const size_t ndims = dims.size();
  const size_t nmeas = measures.size();
  size_t survivors = 0;
  for (double w : weights) survivors += w > 0.0 ? 1 : 0;
  out.mo.ReserveFacts(survivors);
  if (approach == SelectionApproach::kWeighted) out.weights.reserve(survivors);
  std::vector<ValueId> coords(ndims);
  std::vector<int64_t> meas(nmeas);
  if (storage::ColumnarEnabled()) {
    // Late materialization: chunks with no surviving weight are skipped
    // before their columns are ever decoded.
    for (const exec::Shard& u : plan.units) {
      t.ForEachBatch(
          u.begin, u.end,
          [&](const FactTable::BatchView& b) {
            const RowId first = b.first_row();
            for (size_t i = 0; i < b.rows(); ++i) {
              const double w = weights[first + i];
              if (w <= 0.0) continue;
              for (size_t d = 0; d < ndims; ++d) coords[d] = b.dim_col(d)[i];
              for (size_t m = 0; m < nmeas; ++m) meas[m] = b.meas_col(m)[i];
              // Table rows were validated on insert against these same
              // dimensions, so the survivors append unchecked.
              FactId nf = out.mo.AppendFactUnchecked(coords, meas);
              // The names Select over MaterializeMO would have produced.
              if (materialize_names) {
                out.mo.SetFactName(nf, "fact_" + std::to_string(first + i));
              }
              if (approach == SelectionApproach::kWeighted) {
                out.weights.push_back(w);
              }
            }
          },
          [&](RowId first, size_t n) { return NoSurvivors(weights, first, n); });
    }
    return out;
  }
  for (const exec::Shard& u : plan.units) {
    t.ForEachRow(u.begin, u.end, [&](RowId r, const FactTable::RowRef& row) {
      const double w = weights[r];
      if (w <= 0.0) return;
      for (size_t d = 0; d < ndims; ++d) coords[d] = row.coord(d);
      for (size_t m = 0; m < nmeas; ++m) meas[m] = row.measure(m);
      // Table rows were validated on insert against these same dimensions,
      // so the survivors append unchecked.
      FactId nf = out.mo.AppendFactUnchecked(coords, meas);
      // The names Select over MaterializeMO would have produced.
      if (materialize_names) out.mo.SetFactName(nf, "fact_" + std::to_string(r));
      if (approach == SelectionApproach::kWeighted) out.weights.push_back(w);
    });
  }
  return out;
}

Result<MultidimensionalObject> Project(const MultidimensionalObject& mo,
                                       const std::vector<DimensionId>& dims,
                                       const std::vector<MeasureId>& measures) {
  if (dims.empty()) {
    return Status::InvalidArgument("projection must keep >= 1 dimension");
  }
  std::vector<std::shared_ptr<Dimension>> kept_dims;
  for (DimensionId d : dims) {
    if (d >= mo.num_dimensions()) {
      return Status::InvalidArgument("unknown dimension in projection");
    }
    kept_dims.push_back(mo.dimension(d));
  }
  std::vector<MeasureType> kept_meas;
  for (MeasureId m : measures) {
    if (m >= mo.num_measures()) {
      return Status::InvalidArgument("unknown measure in projection");
    }
    kept_meas.push_back(mo.measure_type(m));
  }

  MultidimensionalObject out(mo.fact_type(), std::move(kept_dims),
                             std::move(kept_meas));
  std::vector<ValueId> coords(dims.size());
  std::vector<int64_t> meas(measures.size());
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    for (size_t d = 0; d < dims.size(); ++d) coords[d] = mo.Coord(f, dims[d]);
    for (size_t m = 0; m < measures.size(); ++m) {
      meas[m] = mo.Measure(f, measures[m]);
    }
    DWRED_ASSIGN_OR_RETURN(FactId nf, out.AddFact(coords, meas));
    out.SetFactName(nf, mo.FactName(f));
    if (const std::vector<FactId>* prov = mo.Provenance(f)) {
      out.SetProvenance(nf, *prov, mo.ResponsibleAction(f));
    }
  }
  return out;
}

std::vector<FactId> GroupHigh(const MultidimensionalObject& mo,
                              std::span<const ValueId> cell,
                              std::span<const CategoryId> target) {
  std::vector<FactId> out;
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    bool member = true;
    for (size_t d = 0; d < mo.num_dimensions() && member; ++d) {
      auto dd = static_cast<DimensionId>(d);
      const Dimension& dim = *mo.dimension(dd);
      CategoryId cell_cat = dim.value_category(cell[d]);
      // Per eq. (38): for cell values strictly above the requested category
      // (Type(v_i) >_T C_ij) the fact must map *directly* to the value;
      // otherwise ordinary characterization (f ~> v) suffices.
      bool strictly_higher =
          dim.type().Leq(target[d], cell_cat) && cell_cat != target[d];
      if (strictly_higher) {
        member = mo.Coord(f, dd) == cell[d];
      } else {
        member = mo.Characterizes(f, dd, cell[d]);
      }
    }
    if (member) out.push_back(f);
  }
  return out;
}

Result<MultidimensionalObject> AggregateFormation(
    const MultidimensionalObject& mo, const std::vector<CategoryId>& target,
    AggregationApproach approach, bool track_provenance,
    const std::shared_ptr<const vm::RollupProgram>& rollup_in) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& agg_latency = registry.GetHistogram(
      "dwred_query_aggregate_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one aggregate-formation evaluation (Section 6)");
  static obs::Counter& c_aggs = registry.GetCounter(
      "dwred_query_aggregations", "aggregate-formation operators run");
  obs::TraceSpan span("query.aggregate", &agg_latency);
  c_aggs.Increment();
  span.AddField("facts_in", static_cast<int64_t>(mo.num_facts()));
  if (target.size() != mo.num_dimensions()) {
    return Status::InvalidArgument(
        "aggregate formation needs one category per dimension");
  }
  const size_t ndims = mo.num_dimensions();
  const size_t nmeas = mo.num_measures();

  // LUB approach: per dimension, the least category >= desired that every
  // fact's value can roll up to.
  std::vector<CategoryId> lub = target;
  if (approach == AggregationApproach::kLub) {
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      for (size_t d = 0; d < ndims; ++d) {
        auto dd = static_cast<DimensionId>(d);
        CategoryId cf =
            mo.dimension(dd)->value_category(mo.Coord(f, dd));
        if (!mo.dimension(dd)->type().Leq(cf, lub[d])) {
          lub[d] = mo.dimension(dd)->type().Lub(cf, lub[d]);
        }
      }
    }
  }

  MultidimensionalObject out(mo.fact_type(), mo.dimensions(),
                             mo.measure_types());
  struct Group {
    FactId out_id;
    std::vector<FactId> sources;
    bool merged = false;
  };
  std::unordered_map<std::vector<ValueId>, Group, CellKeyHash> groups;

  // Folds one contribution (a cell plus measure values) into its group.
  auto absorb = [&](const std::vector<ValueId>& cell,
                    std::span<const int64_t> meas, FactId f) -> Status {
    auto it = groups.find(cell);
    if (it == groups.end()) {
      DWRED_ASSIGN_OR_RETURN(FactId nf, out.AddFact(cell, meas));
      Group g;
      g.out_id = nf;
      if (track_provenance) {
        if (const std::vector<FactId>* prov = mo.Provenance(f)) {
          g.sources = *prov;
        } else {
          g.sources = {f};
        }
      }
      groups.emplace(cell, std::move(g));
    } else {
      Group& g = it->second;
      for (size_t m = 0; m < nmeas; ++m) {
        auto mm = static_cast<MeasureId>(m);
        out.SetMeasure(g.out_id, mm,
                       CombineMeasure(mo.measure_type(mm).agg,
                                      out.Measure(g.out_id, mm), meas[m]));
      }
      g.merged = true;
      if (track_provenance) {
        if (const std::vector<FactId>* prov = mo.Provenance(f)) {
          g.sources.insert(g.sources.end(), prov->begin(), prov->end());
        } else {
          g.sources.push_back(f);
        }
      }
    }
    return Status::OK();
  };

  // For the non-disaggregated approaches each fact's target cell depends only
  // on the fact itself, so the rollup computation shards over fact ranges;
  // grouping then runs serially in fact order over the precomputed cells
  // (byte-identical at every thread count, docs/PARALLELISM.md). The
  // disaggregated approach stays fully serial: its cross-product split makes
  // per-fact work size data-dependent and it is rare in practice.
  std::vector<ValueId> flat_cells;
  std::vector<uint8_t> drops;
  if (approach != AggregationApproach::kDisaggregated && mo.num_facts() > 0) {
    flat_cells.resize(mo.num_facts() * ndims);
    drops.assign(mo.num_facts(), 0);
    std::atomic<bool> lub_error{false};
    // The per-fact Leq + Rollup walks compiled to per-dimension lookup
    // tables (src/vm): the tables are filled by the same walks, so rolled
    // cells are identical — only the per-row cost changes. Oversized
    // dimensions or a disabled VM fall back to walking every fact. A
    // caller-supplied program (compiled once per query and cached per
    // epoch+granularity) is valid whenever the effective categories are
    // `target`; the LUB approach's may differ, so it compiles its own. Local
    // compilation enumerates every dimension value, so it only pays off when
    // the per-fact walks it replaces outnumber the table entries.
    const std::vector<CategoryId>& want_cats =
        approach == AggregationApproach::kLub ? lub : target;
    std::optional<vm::RollupProgram> local;
    const vm::RollupProgram* rollup = nullptr;
    if (vm::Enabled()) {
      if (rollup_in != nullptr && approach != AggregationApproach::kLub) {
        rollup = rollup_in.get();
      } else {
        size_t extent_sum = 0;
        for (const auto& d : mo.dimensions()) extent_sum += d->num_values();
        if (mo.num_facts() * ndims >= extent_sum) {
          local = vm::RollupProgram::Compile(mo.dimensions(), want_cats);
          if (local.has_value()) rollup = &*local;
        }
      }
    } else {
      vm::CountFallback();
    }
    scan::Execute(
        scan::PlanMoScan(mo.num_facts(), /*grain=*/512),
        [&](size_t, size_t begin, size_t end) {
          for (FactId f = begin; f < end; ++f) {
            ValueId* c = &flat_cells[f * ndims];
            const ValueId* in = mo.FactCoords(f).data();
            if (rollup != nullptr && rollup->Map(in, c)) {
              for (size_t d = 0; d < ndims; ++d) {
                if (c[d] != vm::RollupProgram::kNotBelow) continue;
                if (approach == AggregationApproach::kAvailability) {
                  c[d] = in[d];  // finest available level >= desired
                } else if (approach == AggregationApproach::kStrict) {
                  drops[f] = 1;
                  break;
                } else {  // kLub: lub was joined above every fact's category
                  lub_error.store(true, std::memory_order_relaxed);
                  return;
                }
              }
              continue;
            }
            if (rollup != nullptr) vm::CountFallback();
            for (size_t d = 0; d < ndims; ++d) {
              auto dd = static_cast<DimensionId>(d);
              const Dimension& dim = *mo.dimension(dd);
              ValueId v = in[d];
              CategoryId cf = dim.value_category(v);
              CategoryId want = want_cats[d];
              if (dim.type().Leq(cf, want)) {
                c[d] = dim.Rollup(v, want);
                DWRED_CHECK(c[d] != kInvalidValue);
              } else if (approach == AggregationApproach::kAvailability) {
                c[d] = v;  // finest available level >= desired
              } else if (approach == AggregationApproach::kStrict) {
                drops[f] = 1;
                break;
              } else {  // kLub: lub was joined above every fact's category
                lub_error.store(true, std::memory_order_relaxed);
                return;
              }
            }
          }
        });
    if (lub_error.load()) {
      return Status::Internal("LUB category not above fact granularity");
    }
  }

  std::vector<ValueId> cell(ndims);
  std::vector<int64_t> meas(nmeas);
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    if (!flat_cells.empty()) {
      // Non-disaggregated: consume the precomputed cell.
      if (drops[f]) continue;
      cell.assign(flat_cells.begin() + f * ndims,
                  flat_cells.begin() + (f + 1) * ndims);
      for (size_t m = 0; m < nmeas; ++m) {
        meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
      }
      DWRED_RETURN_IF_ERROR(absorb(cell, meas, f));
      continue;
    }
    bool drop = false;
    // Dimensions whose value sits above the requested level and, under the
    // disaggregated approach, has materialized descendants to split across.
    std::vector<size_t> split_dims;
    std::vector<const std::vector<ValueId>*> split_sets;
    for (size_t d = 0; d < ndims && !drop; ++d) {
      auto dd = static_cast<DimensionId>(d);
      const Dimension& dim = *mo.dimension(dd);
      ValueId v = mo.Coord(f, dd);
      CategoryId cf = dim.value_category(v);
      CategoryId want = approach == AggregationApproach::kLub ? lub[d]
                                                              : target[d];
      if (dim.type().Leq(cf, want)) {
        cell[d] = dim.Rollup(v, want);
        DWRED_CHECK(cell[d] != kInvalidValue);
      } else {
        switch (approach) {
          case AggregationApproach::kAvailability:
            // Finest available level >= desired: the fact's own value.
            cell[d] = v;
            break;
          case AggregationApproach::kStrict:
            drop = true;
            break;
          case AggregationApproach::kLub:
            return Status::Internal("LUB category not above fact granularity");
          case AggregationApproach::kDisaggregated: {
            const std::vector<ValueId>& desc = dim.DrillDown(v, want);
            if (desc.empty()) {
              cell[d] = v;  // no materialized descendants: availability
            } else {
              split_dims.push_back(d);
              split_sets.push_back(&desc);
              cell[d] = desc[0];  // placeholder, rewritten below
            }
            break;
          }
        }
      }
    }
    if (drop) continue;

    for (size_t m = 0; m < nmeas; ++m) {
      meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
    }
    if (split_dims.empty()) {
      DWRED_RETURN_IF_ERROR(absorb(cell, meas, f));
      continue;
    }

    // Disaggregation: iterate the cross product of the descendant sets,
    // splitting SUM measures uniformly (remainders to the leading cells so
    // totals stay exact) and copying MIN/MAX.
    int64_t n = 1;
    for (const auto* s : split_sets) n *= static_cast<int64_t>(s->size());
    std::vector<size_t> idx(split_dims.size(), 0);
    std::vector<int64_t> piece(nmeas);
    for (int64_t k = 0; k < n; ++k) {
      for (size_t j = 0; j < split_dims.size(); ++j) {
        cell[split_dims[j]] = (*split_sets[j])[idx[j]];
      }
      for (size_t m = 0; m < nmeas; ++m) {
        if (mo.measure_type(static_cast<MeasureId>(m)).agg == AggFn::kSum) {
          piece[m] = meas[m] / n + (k < meas[m] % n ? 1 : 0);
          if (meas[m] < 0) piece[m] = meas[m] / n - (k < -meas[m] % n ? 1 : 0);
        } else {
          piece[m] = meas[m];
        }
      }
      DWRED_RETURN_IF_ERROR(absorb(cell, piece, f));
      for (size_t j = split_dims.size(); j-- > 0;) {
        if (++idx[j] < split_sets[j]->size()) break;
        idx[j] = 0;
      }
    }
  }

  if (track_provenance) {
    for (auto& [key, g] : groups) {
      std::sort(g.sources.begin(), g.sources.end());
      g.sources.erase(std::unique(g.sources.begin(), g.sources.end()),
                      g.sources.end());
      std::string name = "fact_";
      for (FactId s : g.sources) name += std::to_string(s);
      out.SetFactName(g.out_id, std::move(name));
      out.SetProvenance(g.out_id, g.sources, kNoAction);
    }
  }
  return out;
}

Result<MultidimensionalObject> AggregateFromScan(
    const FactTable& t, const scan::ScanPlan& plan, const PredExpr& pred,
    int64_t now_day, SelectionApproach approach, const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures,
    const std::vector<CategoryId>& target,
    const std::shared_ptr<const vm::PredProgram>& compiled,
    const std::shared_ptr<const vm::RollupProgram>& rollup) {
  DWRED_CHECK(dims.size() == t.num_dims());
  DWRED_CHECK(measures.size() == t.num_measures());
  if (target.size() != dims.size()) {
    return Status::InvalidArgument(
        "aggregate formation needs one category per dimension");
  }
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& fused_latency = registry.GetHistogram(
      "dwred_query_select_aggregate_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one fused selection + aggregate-formation evaluation");
  static obs::Counter& c_selects =
      registry.GetCounter("dwred_query_selects", "selection operators run");
  static obs::Counter& c_aggs = registry.GetCounter(
      "dwred_query_aggregations", "aggregate-formation operators run");
  obs::TraceSpan span("query.select_aggregate", &fused_latency);
  // One σ and one α did run, just without the intermediate MO between them.
  c_selects.Increment();
  c_aggs.Increment();
  size_t facts_in = 0;
  for (const exec::Shard& u : plan.units) facts_in += u.end - u.begin;
  span.AddField("facts_in", static_cast<int64_t>(facts_in));

  // Phase 1 — identical to SelectFromScan: shard-parallel weights indexed by
  // logical row id (rows in pruned segments keep weight 0). The packed
  // columnar fold below fuses this into its single pass instead (chunk
  // weights never leave the batch), so the table fill is deferred until a
  // two-phase path is actually taken.
  std::vector<double> weights;
  vm::CompiledScan cs(compiled, [&](const ValueId* c) {
    return EvalQueryPredOnCoords(pred, dims, c, now_day, approach);
  });

  // Phase 2 — the serial ascending pass SelectFromScan + AggregateFormation
  // would have made twice, collapsed into one: each surviving row's cell is
  // rolled up (tables, else the walk) and folded into its group directly.
  const size_t ndims = dims.size();
  const size_t nmeas = measures.size();
  MultidimensionalObject out(fact_type, dims, measures);
  struct Group {
    FactId out_id;
  };
  std::unordered_map<std::vector<ValueId>, Group, CellKeyHash> groups;
  const vm::RollupProgram* rp = rollup.get();
  std::vector<ValueId> in(ndims);
  std::vector<ValueId> cell(ndims);
  std::vector<int64_t> meas(nmeas);
  // Rolls the already-gathered `in` row up into `cell` (tables, else the
  // walk) — shared by every iteration shape below.
  auto roll_cell = [&]() {
    if (rp != nullptr && rp->Map(in.data(), cell.data())) {
      for (size_t d = 0; d < ndims; ++d) {
        if (cell[d] == vm::RollupProgram::kNotBelow) {
          cell[d] = in[d];  // availability: finest available level
        }
      }
    } else {
      if (rp != nullptr) vm::CountFallback();
      for (size_t d = 0; d < ndims; ++d) {
        const Dimension& dim = *dims[d];
        CategoryId cf = dim.value_category(in[d]);
        if (dim.type().Leq(cf, target[d])) {
          cell[d] = dim.Rollup(in[d], target[d]);
          DWRED_CHECK(cell[d] != kInvalidValue);
        } else {
          cell[d] = in[d];  // availability: finest available level
        }
      }
    }
  };
  // Folds the rolled `cell`/`meas` row into its group.
  auto fold_row = [&]() {
    roll_cell();
    auto it = groups.find(cell);
    if (it == groups.end()) {
      // Rolled-up coordinates are interned values of these same
      // dimensions, so the group cells append unchecked.
      groups.emplace(cell, Group{out.AppendFactUnchecked(cell, meas)});
    } else {
      std::span<int64_t> acc = out.MutableFactMeasures(it->second.out_id);
      for (size_t m = 0; m < nmeas; ++m) {
        acc[m] = CombineMeasure(measures[m].agg, acc[m], meas[m]);
      }
    }
  };
  if (storage::ColumnarEnabled()) {
    // Late materialization, as in SelectFromScan: survivor-free chunks are
    // skipped before any column is decoded.
    std::optional<std::vector<int>> shifts = PackedCellShifts(dims);
    if (shifts && rp != nullptr) {
      // Vectorized single-pass fold: the chunk is weighed in place
      // (EvalBatch over the batch's columns — the weights never round-trip
      // through the table-sized vector, and each column is decoded exactly
      // once per query), then each dimension's rollup table — pre-combined
      // with the availability fixup and pre-shifted into its packed
      // cell-key bit field — turns key computation into one gather + OR per
      // (row, dimension), and the group probe hashes one integer instead of
      // a heap vector. Row order and per-row weights are unchanged, so
      // output bytes are identical to the two-phase paths below.
      std::vector<std::vector<uint64_t>> packed_tab(ndims);
      std::vector<std::vector<ValueId>> rolled_tab(ndims);
      for (size_t d = 0; d < ndims; ++d) {
        const size_t sz = rp->TableSize(d);
        packed_tab[d].resize(sz);
        rolled_tab[d].resize(sz);
        for (ValueId v = 0; v < sz; ++v) {
          const ValueId tv = rp->TableAt(d, v);
          // availability: finest available level
          const ValueId r = tv == vm::RollupProgram::kNotBelow ? v : tv;
          rolled_tab[d][v] = r;
          packed_tab[d][v] = static_cast<uint64_t>(r) << (*shifts)[d];
        }
      }
      PackedGroupIndex packed;
      std::vector<uint64_t> keys(FactTable::kBatchRows);
      std::vector<uint8_t> slow(FactTable::kBatchRows);
      std::vector<double> wbuf(FactTable::kBatchRows);
      vm::PredProgram::BatchScratch scratch;
      for (const exec::Shard& u : plan.units) {
        t.ForEachBatch(
            u.begin, u.end,
            [&](const FactTable::BatchView& b) {
              const size_t n = b.rows();
              cs.WeighBatch(b, wbuf.data(), &scratch);
              std::fill_n(keys.begin(), n, uint64_t{0});
              std::fill_n(slow.begin(), n, uint8_t{0});
              for (size_t d = 0; d < ndims; ++d) {
                const ValueId* c = b.dim_col(d);
                const uint64_t* pt = packed_tab[d].data();
                const size_t sz = packed_tab[d].size();
                for (size_t i = 0; i < n; ++i) {
                  if (c[i] < sz) {
                    keys[i] |= pt[c[i]];
                  } else {
                    slow[i] = 1;  // interned after compilation: walk the row
                  }
                }
              }
              for (size_t i = 0; i < n; ++i) {
                if (wbuf[i] <= 0.0) continue;
                uint64_t key = keys[i];
                if (slow[i]) {
                  vm::CountFallback();
                  for (size_t d = 0; d < ndims; ++d) in[d] = b.dim_col(d)[i];
                  for (size_t d = 0; d < ndims; ++d) {
                    const Dimension& dim = *dims[d];
                    CategoryId cf = dim.value_category(in[d]);
                    if (dim.type().Leq(cf, target[d])) {
                      cell[d] = dim.Rollup(in[d], target[d]);
                      DWRED_CHECK(cell[d] != kInvalidValue);
                    } else {
                      cell[d] = in[d];  // availability: finest available
                    }
                  }
                  key = 0;
                  for (size_t d = 0; d < ndims; ++d) {
                    key |= static_cast<uint64_t>(cell[d]) << (*shifts)[d];
                  }
                }
                uint32_t& slot = packed.Slot(key);
                if (slot == PackedGroupIndex::kEmpty) {
                  if (!slow[i]) {
                    for (size_t d = 0; d < ndims; ++d) {
                      cell[d] = rolled_tab[d][b.dim_col(d)[i]];
                    }
                  }
                  for (size_t m = 0; m < nmeas; ++m) {
                    meas[m] = b.meas_col(m)[i];
                  }
                  slot = static_cast<uint32_t>(
                      out.AppendFactUnchecked(cell, meas));
                } else {
                  std::span<int64_t> acc = out.MutableFactMeasures(slot);
                  for (size_t m = 0; m < nmeas; ++m) {
                    acc[m] = CombineMeasure(measures[m].agg, acc[m],
                                            b.meas_col(m)[i]);
                  }
                }
              }
            });
      }
      return out;
    }
    cs.WeighTable(t, plan, &weights);
    for (const exec::Shard& u : plan.units) {
      t.ForEachBatch(
          u.begin, u.end,
          [&](const FactTable::BatchView& b) {
            const RowId first = b.first_row();
            for (size_t i = 0; i < b.rows(); ++i) {
              if (weights[first + i] <= 0.0) continue;
              for (size_t d = 0; d < ndims; ++d) in[d] = b.dim_col(d)[i];
              for (size_t m = 0; m < nmeas; ++m) meas[m] = b.meas_col(m)[i];
              fold_row();
            }
          },
          [&](RowId first, size_t n) { return NoSurvivors(weights, first, n); });
    }
    return out;
  }
  cs.WeighTable(t, plan, &weights);
  for (const exec::Shard& u : plan.units) {
    t.ForEachRow(u.begin, u.end, [&](RowId r, const FactTable::RowRef& row) {
      if (weights[r] <= 0.0) return;
      for (size_t d = 0; d < ndims; ++d) in[d] = row.coord(d);
      for (size_t m = 0; m < nmeas; ++m) meas[m] = row.measure(m);
      fold_row();
    });
  }
  return out;
}

}  // namespace dwred
