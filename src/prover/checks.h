#pragma once

// Decision procedures for the restricted predicate class of the specification
// language — the role PVS plays in the paper (Sections 5.2 and 5.3). After
// DNF pre-processing every conjunct is a per-dimension conjunction of a
// symbolic day-level time interval (bounds fixed or NOW-relative) and
// categorical set constraints over finite dimension extents. Two questions
// are asked:
//
//  1. Overlap (NonCrossing, Section 5.2 lines 3-4): does there exist a time t
//     and a cell satisfying both conjuncts? Categorical overlap is decided
//     exactly by finite-domain enumeration at the GLB category. Temporal
//     overlap is decided exactly when both intervals are fixed; with
//     NOW-relative bounds the check evaluates the concrete intervals on a
//     dense sample grid of NOW values (a base monthly grid plus daily grids
//     around every "critical" NOW where a moving bound meets a fixed bound).
//     Unknown is conservative: the caller treats it as overlapping.
//
//  2. Boundary coverage (Growing, Section 5.3 eq. (23)): for a shrinking
//     conjunct (NOW-relative lower bound), is every cell falling over the
//     lower boundary immediately covered by one of the candidate conjuncts
//     (those of actions >=_V the shrinking one)? Checked per sample NOW: the
//     leaving window of days (the granule sliding past the bound) crossed
//     with the enumerated candidate cells; a cell-day is covered when some
//     candidate's (exact) interval contains the day and its categorical
//     constraints allow the cell. Unknown is conservative: the caller rejects
//     the specification.
//
// The sample grids cover the Gregorian calendar's month-length wobble in
// practice; DESIGN.md documents this substitution for the paper's theorem
// prover.

#include <string>
#include <vector>

#include "spec/predicate_analysis.h"

namespace dwred {

enum class TriBool : uint8_t { kNo, kYes, kUnknown };

/// Tuning knobs for the decision procedures.
struct ProverOptions {
  /// Base sample grid: first day of each month over this many years around
  /// the anchor days found in the conjuncts (and around 2000-01-01 when no
  /// fixed anchor exists).
  int grid_years = 40;
  /// Daily sample radius around each critical NOW value.
  int critical_radius_days = 45;
  /// Cap on enumerated candidate cells per check.
  size_t max_cells = 100000;
};

/// Question 1: can the two conjuncts be simultaneously satisfied by a common
/// cell at some time?
TriBool ConjunctsEverOverlap(const MultidimensionalObject& mo,
                             const Conjunct& a, const Conjunct& b,
                             const ProverOptions& opts = {});

/// Question 2: whenever a cell leaves `shrinking`'s region over its
/// NOW-relative lower bound, is it covered by some conjunct in `covers`?
/// `diagnostic` (optional) receives a human-readable witness on kNo.
TriBool BoundaryCovered(const MultidimensionalObject& mo,
                        const Conjunct& shrinking,
                        const std::vector<const Conjunct*>& covers,
                        const ProverOptions& opts = {},
                        std::string* diagnostic = nullptr);

/// The NOW sample grid used by both checks (exposed for tests).
std::vector<int64_t> BuildSampleGrid(const std::vector<const Conjunct*>& cs,
                                     const ProverOptions& opts);

}  // namespace dwred
