#include "prover/checks.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace dwred {

namespace {

/// Approximate day equivalent of a NOW offset (grid placement only; the
/// evaluation of bounds at a sample is always exact calendar arithmetic).
int64_t ApproxOffsetDays(const SymTimeBound& b) {
  return (b.months * 30437) / 1000 + b.days + b.extra_days;
}

void CollectAnchorsAndOffsets(const Conjunct& c, std::vector<int64_t>* anchors,
                              std::vector<int64_t>* offsets) {
  auto visit = [&](const std::vector<SymTimeBound>& bs) {
    for (const SymTimeBound& b : bs) {
      if (b.kind == SymTimeBound::Kind::kFixed) {
        anchors->push_back(b.fixed_day);
      } else {
        offsets->push_back(ApproxOffsetDays(b));
      }
    }
  };
  visit(c.time.lowers);
  visit(c.time.uppers);
}

/// Merges intervals and tests containment of [lo, hi].
bool UnionContains(std::vector<std::pair<int64_t, int64_t>> intervals,
                   int64_t lo, int64_t hi) {
  std::sort(intervals.begin(), intervals.end());
  int64_t covered_to = lo - 1;
  for (const auto& [a, b] : intervals) {
    if (a > covered_to + 1) break;  // gap
    covered_to = std::max(covered_to, b);
    if (covered_to >= hi) return true;
  }
  return covered_to >= hi;
}

/// Enumerates the cross product of per-dimension candidate lists. Dimensions
/// with no candidates (wildcards) are omitted from cells; `dims_used` names
/// the enumerated dimensions in cell order. Returns false when the product
/// exceeds `max_cells`.
bool EnumerateCells(const std::vector<std::vector<ValueId>>& candidates,
                    const std::vector<DimensionId>& dims_used,
                    size_t max_cells,
                    std::vector<std::vector<ValueId>>* cells) {
  (void)dims_used;
  size_t total = 1;
  for (const auto& c : candidates) {
    if (c.empty()) continue;
    total *= c.size();
    if (total > max_cells) return false;
  }
  cells->clear();
  cells->push_back({});
  for (const auto& c : candidates) {
    if (c.empty()) continue;
    std::vector<std::vector<ValueId>> next;
    next.reserve(cells->size() * c.size());
    for (const auto& partial : *cells) {
      for (ValueId v : c) {
        auto row = partial;
        row.push_back(v);
        next.push_back(std::move(row));
      }
    }
    *cells = std::move(next);
  }
  return true;
}

}  // namespace

std::vector<int64_t> BuildSampleGrid(const std::vector<const Conjunct*>& cs,
                                     const ProverOptions& opts) {
  std::vector<int64_t> anchors, offsets;
  for (const Conjunct* c : cs) CollectAnchorsAndOffsets(*c, &anchors, &offsets);
  if (anchors.empty()) anchors.push_back(10957);  // 2000-01-01
  offsets.push_back(0);

  std::vector<int64_t> grid;
  const int64_t half_span = static_cast<int64_t>(opts.grid_years) * 366 / 2;
  for (int64_t a : anchors) {
    for (int64_t t = a - half_span; t <= a + half_span; t += 30) {
      grid.push_back(t);
    }
    // Daily samples around every critical NOW where a moving bound crosses
    // this anchor.
    for (int64_t o : offsets) {
      int64_t critical = a - o;
      for (int64_t t = critical - opts.critical_radius_days;
           t <= critical + opts.critical_radius_days; ++t) {
        grid.push_back(t);
      }
    }
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

namespace {

/// Counts one prover query and its TriBool verdict
/// (dwred_prover_<kind>_queries / dwred_prover_<kind>_<verdict>).
TriBool RecordProverVerdict(const char* kind, TriBool verdict) {
  auto& registry = obs::MetricsRegistry::Global();
  registry
      .GetCounter(std::string("dwred_prover_") + kind + "_queries",
                  "prover decision-procedure queries")
      .Increment();
  const char* out = verdict == TriBool::kYes
                        ? "yes"
                        : verdict == TriBool::kNo ? "no" : "unknown";
  registry.GetCounter(std::string("dwred_prover_") + kind + "_" + out)
      .Increment();
  return verdict;
}

TriBool ConjunctsEverOverlapImpl(const MultidimensionalObject& mo,
                                 const Conjunct& a, const Conjunct& b,
                                 const ProverOptions& opts) {
  if (a.always_false || b.always_false) return TriBool::kNo;

  // Categorical overlap (time-independent): every dimension must admit a
  // common value.
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    if (static_cast<int>(d) == a.time_dim) continue;
    if (a.cats[d].Unconstrained() && b.cats[d].Unconstrained()) continue;
    CategoryId enum_cat;
    std::vector<ValueId> common =
        CandidateValues(*mo.dimension(static_cast<DimensionId>(d)),
                        {&a.cats[d], &b.cats[d]}, {}, &enum_cat);
    if (common.empty()) return TriBool::kNo;
  }

  // Temporal overlap.
  const TimeConstraint& ta = a.time;
  const TimeConstraint& tb = b.time;
  if (ta.Unbounded() && tb.Unbounded()) return TriBool::kYes;
  bool any_now = ta.HasNowLower() || ta.HasNowUpper() || tb.HasNowLower() ||
                 tb.HasNowUpper();
  if (!any_now) {
    // Fixed intervals: exact. Over-approximate bounds (inexact constraints)
    // keep kNo sound and make kYes conservative.
    int64_t lo = std::max(ta.LowerDay(0), tb.LowerDay(0));
    int64_t hi = std::min(ta.UpperDay(0), tb.UpperDay(0));
    return lo <= hi ? TriBool::kYes : TriBool::kNo;
  }
  for (int64_t t : BuildSampleGrid({&a, &b}, opts)) {
    int64_t lo = std::max(ta.LowerDay(t), tb.LowerDay(t));
    int64_t hi = std::min(ta.UpperDay(t), tb.UpperDay(t));
    if (lo <= hi) return TriBool::kYes;
  }
  return TriBool::kNo;
}

TriBool BoundaryCoveredImpl(const MultidimensionalObject& mo,
                            const Conjunct& shrinking,
                            const std::vector<const Conjunct*>& covers,
                            const ProverOptions& opts,
                            std::string* diagnostic) {
  if (!shrinking.time.HasNowLower()) return TriBool::kYes;
  if (!shrinking.time.exact) {
    if (diagnostic) {
      *diagnostic = "shrinking predicate has a non-interval time constraint";
    }
    return TriBool::kUnknown;
  }

  // Enumerate candidate cells: per dimension the values allowed by the
  // shrinking conjunct, at a category fine enough to decide every cover's
  // constraints by rollup.
  std::vector<std::vector<ValueId>> candidates(mo.num_dimensions());
  std::vector<DimensionId> dims_used;
  std::vector<CategoryId> enum_cats(mo.num_dimensions(), kInvalidCategory);
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    if (static_cast<int>(d) == shrinking.time_dim) continue;
    std::vector<const CatConstraint*> refs;
    for (const Conjunct* c : covers) refs.push_back(&c->cats[d]);
    bool any_ref = !shrinking.cats[d].Unconstrained();
    for (const CatConstraint* r : refs) {
      if (!r->Unconstrained()) any_ref = true;
    }
    if (!any_ref) continue;  // wildcard dimension
    candidates[d] = CandidateValues(*mo.dimension(static_cast<DimensionId>(d)),
                                    {&shrinking.cats[d]}, refs, &enum_cats[d]);
    if (candidates[d].empty()) {
      // The shrinking conjunct admits no cell on this dimension: vacuous.
      return TriBool::kYes;
    }
    dims_used.push_back(static_cast<DimensionId>(d));
  }
  std::vector<std::vector<ValueId>> cells;
  if (!EnumerateCells(candidates, dims_used, opts.max_cells, &cells)) {
    if (diagnostic) *diagnostic = "candidate cell enumeration too large";
    return TriBool::kUnknown;
  }

  std::vector<const Conjunct*> all = covers;
  all.push_back(&shrinking);
  std::vector<int64_t> grid = BuildSampleGrid(all, opts);

  for (int64_t t : grid) {
    const SymTimeBound* binding = shrinking.time.BindingLower(t);
    if (!binding || binding->kind != SymTimeBound::Kind::kNow) {
      continue;  // lower boundary not moving at this NOW: nothing leaves
    }
    int64_t lower = shrinking.time.LowerDay(t);
    int64_t upper = shrinking.time.UpperDay(t);
    if (lower > upper) continue;  // region empty
    // The leaving window: the granule sliding past the lower bound.
    TimeGranule leaving = GranuleOfDay(lower - 1, binding->snap_unit);
    int64_t w_lo = FirstDayOf(leaving);
    int64_t w_hi = lower - 1;
    if (w_lo > w_hi) continue;

    for (const auto& cell : cells) {
      // Collect the cover intervals applicable to this cell at this time.
      std::vector<std::pair<int64_t, int64_t>> intervals;
      for (const Conjunct* c : covers) {
        if (!c->time.exact || c->always_false) continue;
        bool cat_ok = true;
        size_t ci = 0;
        for (DimensionId d : dims_used) {
          if (!c->cats[d].Allows(*mo.dimension(d), cell[ci])) {
            cat_ok = false;
            break;
          }
          ++ci;
        }
        if (!cat_ok) continue;
        int64_t lo = c->time.LowerDay(t);
        int64_t hi = c->time.UpperDay(t);
        if (lo <= hi) intervals.emplace_back(lo, hi);
      }
      if (!UnionContains(std::move(intervals), w_lo, w_hi)) {
        if (diagnostic) {
          std::string cell_str;
          size_t ci = 0;
          for (DimensionId d : dims_used) {
            if (ci) cell_str += ", ";
            cell_str += mo.dimension(d)->value_name(cell[ci]);
            ++ci;
          }
          *diagnostic =
              "cell (" + cell_str + ") leaving over days [" +
              FormatGranule(DayGranule(w_lo)) + " .. " +
              FormatGranule(DayGranule(w_hi)) + "] at NOW=" +
              FormatGranule(DayGranule(t)) +
              " is not covered by any higher action";
        }
        return TriBool::kNo;
      }
    }
  }
  return TriBool::kYes;
}

}  // namespace

TriBool ConjunctsEverOverlap(const MultidimensionalObject& mo,
                             const Conjunct& a, const Conjunct& b,
                             const ProverOptions& opts) {
  return RecordProverVerdict("overlap", ConjunctsEverOverlapImpl(mo, a, b, opts));
}

TriBool BoundaryCovered(const MultidimensionalObject& mo,
                        const Conjunct& shrinking,
                        const std::vector<const Conjunct*>& covers,
                        const ProverOptions& opts, std::string* diagnostic) {
  return RecordProverVerdict(
      "coverage", BoundaryCoveredImpl(mo, shrinking, covers, opts, diagnostic));
}

}  // namespace dwred
