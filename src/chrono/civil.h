#pragma once

// Proleptic-Gregorian calendar arithmetic. Days are counted from the Unix
// epoch (1970-01-01 = day 0), using Howard Hinnant's branchless civil-date
// algorithms. ISO-8601 week numbering is provided for the Time dimension's
// parallel day -> week hierarchy (paper Section 2: day < week < T alongside
// day < month < quarter < year < T).

#include <cstdint>

namespace dwred {

/// A calendar date (year, month 1..12, day 1..31).
struct CivilDate {
  int32_t year = 1970;
  int32_t month = 1;  ///< 1..12
  int32_t day = 1;    ///< 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// Days since 1970-01-01 for a civil date (valid for all proleptic-Gregorian
/// dates representable in int32 years).
int64_t DaysFromCivil(CivilDate d);

/// Civil date for a day count since 1970-01-01.
CivilDate CivilFromDays(int64_t days);

/// Day of week for a day count: 0 = Monday ... 6 = Sunday (ISO numbering - 1).
int WeekdayFromDays(int64_t days);

/// Number of days in the given month of the given year.
int DaysInMonth(int32_t year, int32_t month);

/// True for Gregorian leap years.
bool IsLeapYear(int32_t year);

/// ISO-8601 week-year and week number (1..53) of a day count.
struct IsoWeek {
  int32_t iso_year;
  int32_t week;  ///< 1..53
  friend bool operator==(const IsoWeek&, const IsoWeek&) = default;
};
IsoWeek IsoWeekFromDays(int64_t days);

/// Day count of the Monday starting ISO week `week` of ISO year `iso_year`.
int64_t DaysFromIsoWeek(int32_t iso_year, int32_t week);

/// Adds `months` (may be negative) to a civil date, clamping the day-of-month
/// to the target month's length (standard calendar-arithmetic convention).
CivilDate AddMonths(CivilDate d, int64_t months);

}  // namespace dwred
