#pragma once

// Time granules: time values at one of the Time dimension's granularities
// (day, ISO week, month, quarter, year, T). A granule is (unit, index) where
// the index is a dense integer at that unit (days since epoch, ISO weeks since
// the epoch week, months/quarters since 1970, calendar year). Granules are the
// value domain of the Time dimension and of the time literals in reduction
// predicates (paper Table 1: `tt`).

#include <cstdint>
#include <string>
#include <string_view>

#include "chrono/civil.h"
#include "common/status.h"

namespace dwred {

/// Granularity units of the Time dimension, ordered bottom-up. Week and Month
/// are *parallel* (neither contains the other); both contain Day and are
/// contained in Top — Quarter/Year extend the month branch (paper eq. (2)).
enum class TimeUnit : uint8_t {
  kDay = 0,
  kWeek = 1,
  kMonth = 2,
  kQuarter = 3,
  kYear = 4,
  kTop = 5,
};

/// Display name ("day", "week", ...).
const char* TimeUnitName(TimeUnit unit);

/// A time value at a specific granularity.
struct TimeGranule {
  TimeUnit unit = TimeUnit::kDay;
  int64_t index = 0;  ///< dense index at `unit`; 0 for kTop

  friend bool operator==(const TimeGranule&, const TimeGranule&) = default;
  /// Ordering is only meaningful between granules of the same unit; the
  /// mixed-granularity comparison semantics of paper Definition 5 live in the
  /// query layer.
  friend auto operator<=>(const TimeGranule& a, const TimeGranule& b) = default;
};

/// Granule constructors from calendar components.
TimeGranule DayGranule(CivilDate d);
TimeGranule DayGranule(int64_t days_since_epoch);
TimeGranule WeekGranule(int32_t iso_year, int32_t week);
TimeGranule MonthGranule(int32_t year, int32_t month);
TimeGranule QuarterGranule(int32_t year, int32_t quarter);
TimeGranule YearGranule(int32_t year);
TimeGranule TopGranule();

/// First and last day (inclusive, as days since epoch) covered by a granule.
/// This is the drill-down set used to compare mixed granularities via their
/// greatest lower bound, which for any two Time categories is `day`.
int64_t FirstDayOf(TimeGranule g);
int64_t LastDayOf(TimeGranule g);

/// The granule of unit `unit` containing the given day. Total for every unit
/// (day rolls up to every Time category).
TimeGranule GranuleOfDay(int64_t days_since_epoch, TimeUnit unit);

/// True if `coarse` contains `fine` (drill-down containment). Requires
/// coarse.unit >= fine.unit in element size; week/month are incomparable
/// unless one side is day or Top.
bool GranuleContains(TimeGranule coarse, TimeGranule fine);

/// Formats a granule in the paper's notation: `1999/11/23` (day), `1999W47`
/// (week), `1999/11` (month), `1999Q4` (quarter), `1999` (year), `TOP`.
std::string FormatGranule(TimeGranule g);

/// Parses the paper's notation. The unit is inferred from the shape of the
/// literal.
Result<TimeGranule> ParseGranule(std::string_view text);

/// An unanchored time span ("6 months", "4 quarters") — paper's `s` domain.
struct TimeSpan {
  TimeUnit unit = TimeUnit::kDay;  ///< kTop is not a valid span unit
  int64_t count = 0;

  friend bool operator==(const TimeSpan&, const TimeSpan&) = default;
};

/// Formats a span ("6 months").
std::string FormatSpan(TimeSpan s);

/// Parses "<count> <unit>[s]" ("6 months", "1 day", "4 quarters").
Result<TimeSpan> ParseSpan(std::string_view text);

/// Shifts a *day* granule by a span (negative counts shift into the past).
/// Month/quarter/year spans use calendar arithmetic with day-of-month
/// clamping. This implements the paper's `NOW - 6 months` style expressions,
/// where NOW is bound to the evaluation day (eq. (9)).
int64_t ShiftDays(int64_t days_since_epoch, TimeSpan span);

/// Evaluates `NOW + offset` at time `now_day` and coerces the result to
/// `unit`: the granule of `unit` containing the shifted day. This makes
/// `Time.month < NOW - 6 months` a same-unit comparison against month values,
/// as required by the grammar's typing rule (Type(tt) = C_Time_j).
TimeGranule ResolveNowExpression(int64_t now_day, TimeSpan offset,
                                 TimeUnit unit);

/// Predecessor of a granule at its own unit (the paper's "t_lb - 1, one unit
/// in the finest time granularity" is taken at the bound's own granularity
/// after coercion). Undefined for kTop.
TimeGranule PreviousGranule(TimeGranule g);

/// Successor of a granule at its own unit. Undefined for kTop.
TimeGranule NextGranule(TimeGranule g);

}  // namespace dwred
