#include "chrono/civil.h"

#include "common/check.h"

namespace dwred {

bool IsLeapYear(int32_t y) {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

int DaysInMonth(int32_t year, int32_t month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  DWRED_CHECK(month >= 1 && month <= 12);
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

int64_t DaysFromCivil(CivilDate d) {
  // Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  int64_t y = d.year;
  const int64_t m = d.month;
  const int64_t dd = d.day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                              // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + dd - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;      // [0, 146096]
  return era * 146097 + doe - 719468;
}

CivilDate CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                           // [0, 146096]
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);    // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                         // [0, 11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;                 // [1, 31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                      // [1, 12]
  return CivilDate{static_cast<int32_t>(y + (m <= 2)),
                   static_cast<int32_t>(m), static_cast<int32_t>(d)};
}

int WeekdayFromDays(int64_t days) {
  // 1970-01-01 was a Thursday (ISO weekday 4, i.e. index 3 when Monday = 0).
  int64_t w = (days + 3) % 7;
  if (w < 0) w += 7;
  return static_cast<int>(w);
}

IsoWeek IsoWeekFromDays(int64_t days) {
  // The ISO week of a day is determined by the Thursday of that week.
  int64_t thursday = days - WeekdayFromDays(days) + 3;
  CivilDate td = CivilFromDays(thursday);
  int64_t jan1 = DaysFromCivil(CivilDate{td.year, 1, 1});
  int32_t week = static_cast<int32_t>((thursday - jan1) / 7) + 1;
  return IsoWeek{td.year, week};
}

int64_t DaysFromIsoWeek(int32_t iso_year, int32_t week) {
  // ISO week 1 is the week containing January 4th.
  int64_t jan4 = DaysFromCivil(CivilDate{iso_year, 1, 4});
  int64_t week1_monday = jan4 - WeekdayFromDays(jan4);
  return week1_monday + static_cast<int64_t>(week - 1) * 7;
}

CivilDate AddMonths(CivilDate d, int64_t months) {
  int64_t total = static_cast<int64_t>(d.year) * 12 + (d.month - 1) + months;
  int64_t y = total >= 0 ? total / 12 : (total - 11) / 12;
  int32_t m = static_cast<int32_t>(total - y * 12) + 1;
  int32_t day = d.day;
  int dim = DaysInMonth(static_cast<int32_t>(y), m);
  if (day > dim) day = dim;
  return CivilDate{static_cast<int32_t>(y), m, day};
}

}  // namespace dwred
