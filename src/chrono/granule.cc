#include "chrono/granule.h"

#include <cstdio>

#include "common/check.h"
#include "common/strings.h"

namespace dwred {

namespace {

// Week index: ISO weeks since the epoch week (whose Monday is 1969-12-29 =
// day -3, index 0). Shifting by +3 aligns Mondays to multiples of 7 so floor
// division is exact.
int64_t WeekIndexOfDay(int64_t day) {
  int64_t shifted = day + 3;
  return shifted >= 0 ? shifted / 7 : (shifted - 6) / 7;
}

int64_t MondayOfWeekIndex(int64_t week_index) { return week_index * 7 - 3; }

int64_t MonthIndex(int32_t year, int32_t month) {
  return static_cast<int64_t>(year - 1970) * 12 + (month - 1);
}

int64_t QuarterIndex(int32_t year, int32_t quarter) {
  return static_cast<int64_t>(year - 1970) * 4 + (quarter - 1);
}

void MonthFromIndex(int64_t idx, int32_t* year, int32_t* month) {
  int64_t y = idx >= 0 ? idx / 12 : (idx - 11) / 12;
  *year = static_cast<int32_t>(1970 + y);
  *month = static_cast<int32_t>(idx - y * 12) + 1;
}

void QuarterFromIndex(int64_t idx, int32_t* year, int32_t* quarter) {
  int64_t y = idx >= 0 ? idx / 4 : (idx - 3) / 4;
  *year = static_cast<int32_t>(1970 + y);
  *quarter = static_cast<int32_t>(idx - y * 4) + 1;
}

}  // namespace

const char* TimeUnitName(TimeUnit unit) {
  switch (unit) {
    case TimeUnit::kDay: return "day";
    case TimeUnit::kWeek: return "week";
    case TimeUnit::kMonth: return "month";
    case TimeUnit::kQuarter: return "quarter";
    case TimeUnit::kYear: return "year";
    case TimeUnit::kTop: return "TOP";
  }
  return "?";
}

TimeGranule DayGranule(CivilDate d) {
  return TimeGranule{TimeUnit::kDay, DaysFromCivil(d)};
}

TimeGranule DayGranule(int64_t days_since_epoch) {
  return TimeGranule{TimeUnit::kDay, days_since_epoch};
}

TimeGranule WeekGranule(int32_t iso_year, int32_t week) {
  return TimeGranule{TimeUnit::kWeek,
                     WeekIndexOfDay(DaysFromIsoWeek(iso_year, week))};
}

TimeGranule MonthGranule(int32_t year, int32_t month) {
  return TimeGranule{TimeUnit::kMonth, MonthIndex(year, month)};
}

TimeGranule QuarterGranule(int32_t year, int32_t quarter) {
  return TimeGranule{TimeUnit::kQuarter, QuarterIndex(year, quarter)};
}

TimeGranule YearGranule(int32_t year) {
  return TimeGranule{TimeUnit::kYear, year};
}

TimeGranule TopGranule() { return TimeGranule{TimeUnit::kTop, 0}; }

int64_t FirstDayOf(TimeGranule g) {
  switch (g.unit) {
    case TimeUnit::kDay:
      return g.index;
    case TimeUnit::kWeek:
      return MondayOfWeekIndex(g.index);
    case TimeUnit::kMonth: {
      int32_t y, m;
      MonthFromIndex(g.index, &y, &m);
      return DaysFromCivil(CivilDate{y, m, 1});
    }
    case TimeUnit::kQuarter: {
      int32_t y, q;
      QuarterFromIndex(g.index, &y, &q);
      return DaysFromCivil(CivilDate{y, (q - 1) * 3 + 1, 1});
    }
    case TimeUnit::kYear:
      return DaysFromCivil(CivilDate{static_cast<int32_t>(g.index), 1, 1});
    case TimeUnit::kTop:
      DWRED_CHECK_MSG(false, "FirstDayOf(TOP) is unbounded");
  }
  return 0;
}

int64_t LastDayOf(TimeGranule g) {
  switch (g.unit) {
    case TimeUnit::kDay:
      return g.index;
    case TimeUnit::kWeek:
      return MondayOfWeekIndex(g.index) + 6;
    case TimeUnit::kMonth: {
      int32_t y, m;
      MonthFromIndex(g.index, &y, &m);
      return DaysFromCivil(CivilDate{y, m, DaysInMonth(y, m)});
    }
    case TimeUnit::kQuarter: {
      int32_t y, q;
      QuarterFromIndex(g.index, &y, &q);
      int32_t last_month = q * 3;
      return DaysFromCivil(CivilDate{y, last_month,
                                     DaysInMonth(y, last_month)});
    }
    case TimeUnit::kYear:
      return DaysFromCivil(
          CivilDate{static_cast<int32_t>(g.index), 12, 31});
    case TimeUnit::kTop:
      DWRED_CHECK_MSG(false, "LastDayOf(TOP) is unbounded");
  }
  return 0;
}

TimeGranule GranuleOfDay(int64_t day, TimeUnit unit) {
  switch (unit) {
    case TimeUnit::kDay:
      return DayGranule(day);
    case TimeUnit::kWeek:
      return TimeGranule{TimeUnit::kWeek, WeekIndexOfDay(day)};
    case TimeUnit::kMonth: {
      CivilDate c = CivilFromDays(day);
      return MonthGranule(c.year, c.month);
    }
    case TimeUnit::kQuarter: {
      CivilDate c = CivilFromDays(day);
      return QuarterGranule(c.year, (c.month - 1) / 3 + 1);
    }
    case TimeUnit::kYear: {
      CivilDate c = CivilFromDays(day);
      return YearGranule(c.year);
    }
    case TimeUnit::kTop:
      return TopGranule();
  }
  return DayGranule(day);
}

bool GranuleContains(TimeGranule coarse, TimeGranule fine) {
  if (coarse.unit == TimeUnit::kTop) return true;
  if (coarse.unit == fine.unit) return coarse.index == fine.index;
  if (fine.unit == TimeUnit::kTop) return false;
  // Containment holds iff every day of `fine` lies within `coarse`. For the
  // Time hierarchy this reduces to comparing day ranges (weeks may straddle
  // month boundaries, so a week is contained in a month only when its whole
  // range is).
  return FirstDayOf(coarse) <= FirstDayOf(fine) &&
         LastDayOf(fine) <= LastDayOf(coarse);
}

std::string FormatGranule(TimeGranule g) {
  char buf[32];
  switch (g.unit) {
    case TimeUnit::kDay: {
      CivilDate c = CivilFromDays(g.index);
      std::snprintf(buf, sizeof(buf), "%d/%d/%d", c.year, c.month, c.day);
      return buf;
    }
    case TimeUnit::kWeek: {
      IsoWeek w = IsoWeekFromDays(MondayOfWeekIndex(g.index));
      std::snprintf(buf, sizeof(buf), "%dW%d", w.iso_year, w.week);
      return buf;
    }
    case TimeUnit::kMonth: {
      int32_t y, m;
      MonthFromIndex(g.index, &y, &m);
      std::snprintf(buf, sizeof(buf), "%d/%d", y, m);
      return buf;
    }
    case TimeUnit::kQuarter: {
      int32_t y, q;
      QuarterFromIndex(g.index, &y, &q);
      std::snprintf(buf, sizeof(buf), "%dQ%d", y, q);
      return buf;
    }
    case TimeUnit::kYear:
      std::snprintf(buf, sizeof(buf), "%d",
                    static_cast<int32_t>(g.index));
      return buf;
    case TimeUnit::kTop:
      return "TOP";
  }
  return "?";
}

Result<TimeGranule> ParseGranule(std::string_view text) {
  std::string_view s = Trim(text);
  if (s == "TOP" || s == "T") return TopGranule();
  // Week: <year>W<week>
  size_t wpos = s.find('W');
  if (wpos != std::string_view::npos) {
    int64_t y, w;
    if (ParseInt64(s.substr(0, wpos), &y) &&
        ParseInt64(s.substr(wpos + 1), &w) && w >= 1 && w <= 53) {
      return WeekGranule(static_cast<int32_t>(y), static_cast<int32_t>(w));
    }
    return Status::ParseError("bad week literal: " + std::string(text));
  }
  // Quarter: <year>Q<quarter>
  size_t qpos = s.find('Q');
  if (qpos != std::string_view::npos) {
    int64_t y, q;
    if (ParseInt64(s.substr(0, qpos), &y) &&
        ParseInt64(s.substr(qpos + 1), &q) && q >= 1 && q <= 4) {
      return QuarterGranule(static_cast<int32_t>(y), static_cast<int32_t>(q));
    }
    return Status::ParseError("bad quarter literal: " + std::string(text));
  }
  // Slash-separated: year, year/month, or year/month/day.
  std::vector<std::string> parts = Split(std::string(s), '/');
  int64_t nums[3];
  if (parts.size() > 3) {
    return Status::ParseError("bad time literal: " + std::string(text));
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!ParseInt64(parts[i], &nums[i])) {
      return Status::ParseError("bad time literal: " + std::string(text));
    }
  }
  if (parts.size() == 1) return YearGranule(static_cast<int32_t>(nums[0]));
  if (parts.size() == 2) {
    if (nums[1] < 1 || nums[1] > 12) {
      return Status::ParseError("bad month literal: " + std::string(text));
    }
    return MonthGranule(static_cast<int32_t>(nums[0]),
                        static_cast<int32_t>(nums[1]));
  }
  if (nums[1] < 1 || nums[1] > 12 || nums[2] < 1 ||
      nums[2] > DaysInMonth(static_cast<int32_t>(nums[0]),
                            static_cast<int32_t>(nums[1]))) {
    return Status::ParseError("bad day literal: " + std::string(text));
  }
  return DayGranule(CivilDate{static_cast<int32_t>(nums[0]),
                              static_cast<int32_t>(nums[1]),
                              static_cast<int32_t>(nums[2])});
}

std::string FormatSpan(TimeSpan s) {
  std::string out = std::to_string(s.count);
  out += ' ';
  out += TimeUnitName(s.unit);
  if (s.count != 1) out += 's';
  return out;
}

Result<TimeSpan> ParseSpan(std::string_view text) {
  std::string_view s = Trim(text);
  size_t i = 0;
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                          (i == 0 && (s[i] == '-' || s[i] == '+')))) {
    ++i;
  }
  int64_t count;
  if (i == 0 || !ParseInt64(s.substr(0, i), &count)) {
    return Status::ParseError("bad span count: " + std::string(text));
  }
  std::string_view unit = Trim(s.substr(i));
  if (!unit.empty() && unit.back() == 's') unit.remove_suffix(1);
  TimeUnit u;
  if (unit == "day") u = TimeUnit::kDay;
  else if (unit == "week") u = TimeUnit::kWeek;
  else if (unit == "month") u = TimeUnit::kMonth;
  else if (unit == "quarter") u = TimeUnit::kQuarter;
  else if (unit == "year") u = TimeUnit::kYear;
  else return Status::ParseError("bad span unit: " + std::string(text));
  return TimeSpan{u, count};
}

int64_t ShiftDays(int64_t day, TimeSpan span) {
  switch (span.unit) {
    case TimeUnit::kDay:
      return day + span.count;
    case TimeUnit::kWeek:
      return day + span.count * 7;
    case TimeUnit::kMonth:
      return DaysFromCivil(AddMonths(CivilFromDays(day), span.count));
    case TimeUnit::kQuarter:
      return DaysFromCivil(AddMonths(CivilFromDays(day), span.count * 3));
    case TimeUnit::kYear:
      return DaysFromCivil(AddMonths(CivilFromDays(day), span.count * 12));
    case TimeUnit::kTop:
      DWRED_CHECK_MSG(false, "TOP is not a span unit");
  }
  return day;
}

TimeGranule ResolveNowExpression(int64_t now_day, TimeSpan offset,
                                 TimeUnit unit) {
  return GranuleOfDay(ShiftDays(now_day, offset), unit);
}

TimeGranule PreviousGranule(TimeGranule g) {
  DWRED_CHECK(g.unit != TimeUnit::kTop);
  return TimeGranule{g.unit, g.index - 1};
}

TimeGranule NextGranule(TimeGranule g) {
  DWRED_CHECK(g.unit != TimeUnit::kTop);
  return TimeGranule{g.unit, g.index + 1};
}

}  // namespace dwred
