#include "scan/scan.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "spec/predicate_analysis.h"
#include "storage/column.h"

namespace dwred::scan {

namespace {

/// Dimensions with more interned values than this are left unconstrained
/// (building the allowed set is linear in the extent; pruning must stay
/// cheap relative to the scan it saves).
constexpr size_t kMaxEnumerableValues = 1 << 16;

obs::Counter& ScannedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_scan_segments_scanned",
      "segments handed to scan execution after zone-map pruning");
  return c;
}

obs::Counter& PrunedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_scan_segments_pruned",
      "segments skipped entirely by zone-map pruning");
  return c;
}

obs::Counter& RowsSkippedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_scan_rows_skipped",
      "live rows inside segments skipped by zone-map pruning");
  return c;
}

/// True when the atom's operator positively constrains its dimension: the
/// set of matching values is closed under the atom alone. Negated set
/// operators (!=, NOT IN) exclude values instead — a zone-map range nearly
/// always contains *some* non-excluded value, and treating them as
/// unconstrained keeps pruning sound without per-value bookkeeping. Ordered
/// comparisons only constrain the time dimension (the evaluator rejects them
/// on categorical dimensions).
bool ConstrainsDimension(const Atom& a) {
  switch (a.op) {
    case CmpOp::kEq:
    case CmpOp::kIn:
      return true;
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe:
      return a.is_time;
    case CmpOp::kNe:
    case CmpOp::kNotIn:
      return false;
  }
  return false;
}

/// In-place sorted intersection: keeps the elements of `a` also in `b`.
void IntersectSorted(std::vector<ValueId>& a, const std::vector<ValueId>& b) {
  std::vector<ValueId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  a = std::move(out);
}

}  // namespace

ScanSpec ScanSpec::All() { return ScanSpec{}; }

size_t ScanSpec::ApproxBytes() const {
  // Count what the allocator actually holds — the *capacity* of every vector
  // level, not its size. Compilation's push_back growth routinely leaves
  // capacity above size, and a size-only count let the 64 MiB cache budget
  // admit more than it should.
  size_t bytes = sizeof(ScanSpec);
  bytes += conjuncts_.capacity() * sizeof(ConjunctFilter);
  for (const ConjunctFilter& c : conjuncts_) {
    bytes += c.filters.capacity() * sizeof(DimFilter);
    for (const DimFilter& f : c.filters) {
      bytes += f.allowed.capacity() * sizeof(ValueId);
    }
  }
  return bytes;
}

ScanSpec ScanSpec::Compile(const MultidimensionalObject& ctx,
                           const PredExpr& pred, int64_t now_day,
                           const AtomOracle& oracle) {
  (void)now_day;  // baked into `oracle` by the caller; kept for symmetry
  Result<std::vector<Conjunct>> dnf = CompileToDnf(ctx, pred);
  if (!dnf.ok()) return All();  // pathological predicate: scan everything

  ScanSpec spec;
  spec.match_all_ = false;
  for (const Conjunct& c : dnf.value()) {
    if (c.always_false) continue;
    ConjunctFilter cf;
    bool impossible = false;
    for (const Atom& a : c.atoms) {
      if (!ConstrainsDimension(a)) continue;
      const Dimension& dim = *ctx.dimension(a.dim);
      if (dim.num_values() > kMaxEnumerableValues) continue;
      std::vector<ValueId> allowed;
      for (ValueId v = 0; v < dim.num_values(); ++v) {
        if (oracle(a, dim, v) > 0.0) allowed.push_back(v);
      }
      auto it = std::find_if(cf.filters.begin(), cf.filters.end(),
                             [&](const DimFilter& f) { return f.dim == a.dim; });
      if (it == cf.filters.end()) {
        cf.filters.push_back(DimFilter{a.dim, std::move(allowed)});
        it = cf.filters.end() - 1;
      } else {
        IntersectSorted(it->allowed, allowed);
      }
      if (it->allowed.empty()) {
        impossible = true;  // no value of this dimension can ever match
        break;
      }
    }
    if (impossible) continue;
    // A conjunct with no filter left can match anywhere — the whole spec
    // degenerates to a full scan.
    if (cf.filters.empty()) return All();
    spec.conjuncts_.push_back(std::move(cf));
  }
  if (spec.conjuncts_.empty()) spec.match_none_ = true;
  return spec;
}

bool ScanSpec::MaySatisfySegment(const FactTable& t, size_t s) const {
  if (match_all_) return true;
  if (match_none_) return false;
  for (const ConjunctFilter& c : conjuncts_) {
    bool may = true;
    for (const DimFilter& f : c.filters) {
      ValueId lo = t.SegmentDimMin(s, f.dim);
      ValueId hi = t.SegmentDimMax(s, f.dim);
      auto it = std::lower_bound(f.allowed.begin(), f.allowed.end(), lo);
      if (it == f.allowed.end() || *it > hi) {
        may = false;
        break;
      }
    }
    if (may) return true;
  }
  return false;
}

ScanPlan PlanTableScan(const FactTable& t, const ScanSpec& spec) {
  ScanPlan plan;
  plan.segments_total = t.num_segments();
  for (size_t s = 0; s < t.num_segments(); ++s) {
    if (spec.MaySatisfySegment(t, s)) {
      plan.units.push_back(exec::Shard{
          static_cast<size_t>(t.SegmentBegin(s)),
          static_cast<size_t>(t.SegmentBegin(s)) + t.SegmentLiveRows(s)});
    } else {
      ++plan.segments_pruned;
      plan.rows_skipped += t.SegmentLiveRows(s);
    }
  }
  if constexpr (obs::kObsEnabled) {
    ScannedCounter().Increment(plan.segments_total - plan.segments_pruned);
    PrunedCounter().Increment(plan.segments_pruned);
    RowsSkippedCounter().Increment(plan.rows_skipped);
  }
  return plan;
}

ScanPlan PlanMoScan(size_t n, size_t grain) {
  ScanPlan plan;
  int threads = exec::ThreadPool::Global().num_threads();
  plan.units = exec::PartitionShards(
      n, grain, threads == 1 ? 1 : static_cast<size_t>(threads) * 4);
  return plan;
}

MultidimensionalObject MaterializeMO(
    const FactTable& t, const ScanPlan& plan, const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures) {
  DWRED_CHECK(dims.size() == t.num_dims());
  DWRED_CHECK(measures.size() == t.num_measures());
  MultidimensionalObject mo(fact_type, dims, measures);
  std::vector<ValueId> coords(t.num_dims());
  std::vector<int64_t> meas(t.num_measures());
  // Keep the names a full ToMO() would have produced so downstream
  // output is identical whether or not segments were pruned.
  auto add = [&](RowId r) {
    Result<FactId> res = mo.AddFact(coords, meas);
    DWRED_CHECK(res.ok());
    if (static_cast<RowId>(res.value()) != r) {
      mo.SetFactName(res.value(), "fact_" + std::to_string(r));
    }
  };
  if (storage::ColumnarEnabled()) {
    for (const exec::Shard& u : plan.units) {
      t.ForEachBatch(u.begin, u.end, [&](const FactTable::BatchView& b) {
        const RowId first = b.first_row();
        for (size_t i = 0; i < b.rows(); ++i) {
          for (size_t d = 0; d < coords.size(); ++d) {
            coords[d] = b.dim_col(d)[i];
          }
          for (size_t m = 0; m < meas.size(); ++m) {
            meas[m] = b.meas_col(m)[i];
          }
          add(first + i);
        }
      });
    }
    return mo;
  }
  for (const exec::Shard& u : plan.units) {
    t.ForEachRow(u.begin, u.end, [&](RowId r, const FactTable::RowRef& row) {
      for (size_t d = 0; d < coords.size(); ++d) coords[d] = row.coord(d);
      for (size_t m = 0; m < meas.size(); ++m) meas[m] = row.measure(m);
      add(r);
    });
  }
  return mo;
}

}  // namespace dwred::scan
