#pragma once

// The unified scan layer: every pass that iterates facts — Reduce's cell
// grouping, Synchronize's migration planning, and the per-subcube query
// evaluation of α[G_i]σ[P_i](K_i ∪ parents) (paper Section 7) — goes through
// one ScanSpec → ScanPlanner → Execute API instead of hand-rolled row loops.
//
// A ScanSpec is the compiled form of a selection predicate for *segment
// pruning*: per DNF conjunct (spec/predicate_analysis CompileToDnf, which
// pushes NOT onto atom operators), each positively-constraining atom is
// turned into the set of dimension values it may match — computed by asking
// the caller's atom-weight oracle (query/compare's liberal evaluator) for
// every interned value — and same-dimension sets within a conjunct are
// intersected. A segment can then be skipped when, for every conjunct, some
// constrained dimension has no allowed value inside the segment's zone-map
// range [min, max] (storage/fact_table.h). Negated set operators (!=, NOT
// IN) and anything the compiler cannot represent leave the dimension
// unconstrained, so pruning is always a sound over-approximation of
// "some row may have weight > 0" — under all three selection approaches,
// since liberal dominates conservative and weighted.
//
// The planner (PlanTableScan) maps the surviving segments to exec::Shard
// units over *logical* row ids — segments are the natural shard unit for
// exec::ParallelForShards — and records what it skipped in the
// dwred_scan_segments_{scanned,pruned} / dwred_scan_rows_skipped counters.
// PlanMoScan covers the scan sites that iterate an MO (no segment manifest):
// same plan type, shards from exec::PartitionShards.

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"
#include "spec/predicate.h"
#include "storage/fact_table.h"

namespace dwred::scan {

/// May-match oracle for one atom on one dimension value: returns a weight
/// > 0 when a row whose coordinate is `v` could satisfy the atom. Bound by
/// the caller to query/compare's EvalQueryAtomOnValue with the liberal
/// approach (scan must not depend on the query layer — the query layer
/// depends on scan).
using AtomOracle =
    std::function<double(const Atom&, const Dimension&, ValueId)>;

/// A planned scan: the shard units to execute (ascending, disjoint, over
/// logical row ids) plus what pruning skipped.
struct ScanPlan {
  std::vector<exec::Shard> units;
  size_t segments_total = 0;   ///< segments examined (0 for MO scans)
  size_t segments_pruned = 0;  ///< segments skipped via zone maps
  uint64_t rows_skipped = 0;   ///< live rows inside pruned segments
};

/// Compiled projection-free selection spec. Value-semantic and immutable
/// after compilation; safe to share read-only across the parallel query
/// fan-out.
class ScanSpec {
 public:
  /// The unconstrained spec: every segment survives.
  static ScanSpec All();

  /// Compiles `pred` (evaluated at `now_day`) against the dimensions of
  /// `ctx`. Compilation is best-effort: a predicate the DNF compiler rejects
  /// (e.g. conjunct explosion) or a dimension too large to enumerate yields
  /// an unconstrained spec, never an error — pruning is an optimization, not
  /// a filter.
  static ScanSpec Compile(const MultidimensionalObject& ctx,
                          const PredExpr& pred, int64_t now_day,
                          const AtomOracle& oracle);

  /// True when segment `s` of `t` may hold a row with selection weight > 0.
  bool MaySatisfySegment(const FactTable& t, size_t s) const;

  bool unconstrained() const { return match_all_; }
  bool match_none() const { return match_none_; }

  /// Approximate heap footprint of the compiled allowed-value sets, for the
  /// cache layer's byte accounting (src/cache).
  size_t ApproxBytes() const;

 private:
  /// Allowed coordinate set of one dimension within one conjunct (sorted).
  struct DimFilter {
    size_t dim = 0;
    std::vector<ValueId> allowed;
  };
  /// One DNF conjunct's filters (AND across filters).
  struct ConjunctFilter {
    std::vector<DimFilter> filters;
  };

  bool match_all_ = true;
  bool match_none_ = false;
  std::vector<ConjunctFilter> conjuncts_;  ///< OR across conjuncts
};

/// Plans a scan of `t`: one shard per surviving segment, zone-map pruning
/// against `spec`. Updates the dwred_scan_* counters.
ScanPlan PlanTableScan(const FactTable& t, const ScanSpec& spec);

/// Plans an unpruned scan of an `n`-fact MO (or any flat index space):
/// contiguous ascending shards of at least `grain` rows, sized to the global
/// pool (serial execution gets exactly one shard). No counters — nothing can
/// be pruned without a segment manifest.
ScanPlan PlanMoScan(size_t n, size_t grain);

/// Runs `fn(unit_index, begin, end)` over the plan's units on the global
/// pool. Units are disjoint ascending ranges, so any per-unit accumulation
/// merged in unit order is deterministic for every thread count (the PR-3
/// contract).
template <typename Fn>
void Execute(const ScanPlan& plan, Fn&& fn) {
  exec::ThreadPool::Global().ParallelForShards(plan.units, std::forward<Fn>(fn));
}

/// Materializes the plan's rows of `t` as an MO in ascending logical order.
/// Facts keep their table-scan names ("fact_<logical row>"), so downstream
/// operators produce byte-identical output whether or not segments were
/// pruned (the pruned rows are exactly rows no conjunct can match).
MultidimensionalObject MaterializeMO(
    const FactTable& t, const ScanPlan& plan, const std::string& fact_type,
    const std::vector<std::shared_ptr<Dimension>>& dims,
    const std::vector<MeasureType>& measures);

}  // namespace dwred::scan
