#include "spec/predicate.h"

#include <algorithm>

#include "common/check.h"

namespace dwred {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kIn: return "IN";
    case CmpOp::kNotIn: return "NOT IN";
  }
  return "?";
}

CmpOp NegateOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kIn: return CmpOp::kNotIn;
    case CmpOp::kNotIn: return CmpOp::kIn;
  }
  return op;
}

CmpOp MirrorOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // =, != and set ops are symmetric
  }
}

TimeGranule TimeOperand::Resolve(int64_t now_day, TimeUnit unit) const {
  if (!is_now) return fixed;
  int64_t d = ShiftDays(now_day, TimeSpan{TimeUnit::kMonth, now_months});
  d += now_days;
  return GranuleOfDay(d, unit);
}

std::string TimeOperand::ToString(TimeUnit unit) const {
  if (!is_now) return FormatGranule(fixed);
  std::string out = "NOW";
  (void)unit;
  if (now_months != 0) {
    out += now_months < 0 ? " - " : " + ";
    int64_t m = now_months < 0 ? -now_months : now_months;
    if (m % 12 == 0) {
      out += std::to_string(m / 12) + (m == 12 ? " year" : " years");
    } else {
      out += std::to_string(m) + (m == 1 ? " month" : " months");
    }
  }
  if (now_days != 0) {
    out += now_days < 0 ? " - " : " + ";
    int64_t d = now_days < 0 ? -now_days : now_days;
    if (d % 7 == 0) {
      out += std::to_string(d / 7) + (d == 7 ? " week" : " weeks");
    } else {
      out += std::to_string(d) + (d == 1 ? " day" : " days");
    }
  }
  return out;
}

std::string Atom::ToString(const MultidimensionalObject& mo) const {
  const Dimension& d = *mo.dimension(dim);
  std::string out = d.name() + "." + d.type().category_name(category) + " ";
  out += CmpOpName(op);
  out += ' ';
  auto unit = static_cast<TimeUnit>(category);
  if (op == CmpOp::kIn || op == CmpOp::kNotIn) {
    out += '{';
    if (is_time) {
      for (size_t i = 0; i < time_operands.size(); ++i) {
        if (i) out += ", ";
        out += time_operands[i].ToString(unit);
      }
    } else {
      for (size_t i = 0; i < values.size(); ++i) {
        if (i) out += ", ";
        out += d.value_name(values[i]);
      }
    }
    out += '}';
  } else if (is_time) {
    out += time_operands[0].ToString(unit);
  } else {
    out += d.value_name(values[0]);
  }
  return out;
}

std::shared_ptr<PredExpr> PredExpr::True() {
  auto e = std::make_shared<PredExpr>();
  e->kind = Kind::kTrue;
  return e;
}
std::shared_ptr<PredExpr> PredExpr::False() {
  auto e = std::make_shared<PredExpr>();
  e->kind = Kind::kFalse;
  return e;
}
std::shared_ptr<PredExpr> PredExpr::MakeAtom(Atom a) {
  auto e = std::make_shared<PredExpr>();
  e->kind = Kind::kAtom;
  e->atom = std::move(a);
  return e;
}
std::shared_ptr<PredExpr> PredExpr::Not(std::shared_ptr<PredExpr> inner) {
  auto e = std::make_shared<PredExpr>();
  e->kind = Kind::kNot;
  e->kids.push_back(std::move(inner));
  return e;
}
std::shared_ptr<PredExpr> PredExpr::And(
    std::vector<std::shared_ptr<PredExpr>> es) {
  if (es.size() == 1) return es[0];
  auto e = std::make_shared<PredExpr>();
  e->kind = Kind::kAnd;
  e->kids = std::move(es);
  return e;
}
std::shared_ptr<PredExpr> PredExpr::Or(
    std::vector<std::shared_ptr<PredExpr>> es) {
  if (es.size() == 1) return es[0];
  auto e = std::make_shared<PredExpr>();
  e->kind = Kind::kOr;
  e->kids = std::move(es);
  return e;
}

std::string PredExpr::ToString(const MultidimensionalObject& mo) const {
  switch (kind) {
    case Kind::kTrue: return "true";
    case Kind::kFalse: return "false";
    case Kind::kAtom: return atom.ToString(mo);
    case Kind::kNot: return "NOT (" + kids[0]->ToString(mo) + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < kids.size(); ++i) {
        if (i) out += sep;
        out += kids[i]->ToString(mo);
      }
      out += ')';
      return out;
    }
  }
  return "?";
}

namespace {

bool CompareGranules(CmpOp op, TimeGranule a, TimeGranule b) {
  DWRED_CHECK(a.unit == b.unit);
  switch (op) {
    case CmpOp::kLt: return a.index < b.index;
    case CmpOp::kLe: return a.index <= b.index;
    case CmpOp::kGt: return a.index > b.index;
    case CmpOp::kGe: return a.index >= b.index;
    case CmpOp::kEq: return a.index == b.index;
    case CmpOp::kNe: return a.index != b.index;
    default: DWRED_CHECK_MSG(false, "set op in CompareGranules");
  }
  return false;
}

}  // namespace

bool EvalAtomOnCell(const Atom& atom, const MultidimensionalObject& mo,
                    std::span<const ValueId> cell, int64_t now_day) {
  const Dimension& dim = *mo.dimension(atom.dim);
  ValueId direct = cell[atom.dim];
  ValueId at_cat = dim.Rollup(direct, atom.category);
  if (at_cat == kInvalidValue) return false;

  if (atom.is_time) {
    TimeUnit unit = static_cast<TimeUnit>(atom.category);
    TimeGranule v = dim.granule(at_cat);
    if (atom.op == CmpOp::kIn || atom.op == CmpOp::kNotIn) {
      bool found = false;
      for (const TimeOperand& opnd : atom.time_operands) {
        if (opnd.Resolve(now_day, unit) == v) {
          found = true;
          break;
        }
      }
      return atom.op == CmpOp::kIn ? found : !found;
    }
    return CompareGranules(atom.op, v, atom.time_operands[0].Resolve(now_day, unit));
  }

  // Categorical: =, !=, IN, NOT IN on interned values.
  switch (atom.op) {
    case CmpOp::kEq: return at_cat == atom.values[0];
    case CmpOp::kNe: return at_cat != atom.values[0];
    case CmpOp::kIn:
      return std::binary_search(atom.values.begin(), atom.values.end(), at_cat);
    case CmpOp::kNotIn:
      return !std::binary_search(atom.values.begin(), atom.values.end(),
                                 at_cat);
    default:
      // Ordered comparisons require an ordered domain; the grammar permits
      // them "if op is defined for elements of this type" — interned
      // categorical values define only equality and membership.
      DWRED_CHECK_MSG(false, "ordered comparison on a categorical dimension");
  }
  return false;
}

bool EvalPredOnCell(const PredExpr& e, const MultidimensionalObject& mo,
                    std::span<const ValueId> cell, int64_t now_day) {
  switch (e.kind) {
    case PredExpr::Kind::kTrue: return true;
    case PredExpr::Kind::kFalse: return false;
    case PredExpr::Kind::kAtom: return EvalAtomOnCell(e.atom, mo, cell, now_day);
    case PredExpr::Kind::kNot:
      return !EvalPredOnCell(*e.kids[0], mo, cell, now_day);
    case PredExpr::Kind::kAnd:
      for (const auto& k : e.kids) {
        if (!EvalPredOnCell(*k, mo, cell, now_day)) return false;
      }
      return true;
    case PredExpr::Kind::kOr:
      for (const auto& k : e.kids) {
        if (EvalPredOnCell(*k, mo, cell, now_day)) return true;
      }
      return false;
  }
  return false;
}

bool EvalPredOnFact(const PredExpr& e, const MultidimensionalObject& mo,
                    FactId f, int64_t now_day) {
  // Build the fact's direct cell view.
  size_t n = mo.num_dimensions();
  ValueId cell_buf[16];
  DWRED_CHECK_MSG(n <= 16, "more than 16 dimensions");
  for (size_t d = 0; d < n; ++d) {
    cell_buf[d] = mo.Coord(f, static_cast<DimensionId>(d));
  }
  return EvalPredOnCell(e, mo, std::span<const ValueId>(cell_buf, n), now_day);
}

}  // namespace dwred
