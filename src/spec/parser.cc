#include "spec/parser.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <optional>

#include "common/strings.h"
#include "obs/metrics.h"

namespace dwred {

namespace {

enum class TokKind {
  kWord,     // bare word: letters/digits/./_/ (also time literals, values)
  kQuoted,   // 'quoted value'
  kNumber,   // pure digits (subset of word; classified for span parsing)
  kSym,      // punctuation / operator
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> out;
    size_t i = 0;
    auto issymch = [](char c) {
      return strchr("[](){},<>=!+-", c) != nullptr;
    };
    while (i < s_.size()) {
      char c = s_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '\'') {
        size_t j = s_.find('\'', i + 1);
        if (j == std::string_view::npos) {
          return Status::ParseError("unterminated quoted value at offset " +
                                    std::to_string(i));
        }
        out.push_back({TokKind::kQuoted,
                       std::string(s_.substr(i + 1, j - i - 1)), i});
        i = j + 1;
        continue;
      }
      if (issymch(c)) {
        // Two-char operators.
        if (i + 1 < s_.size()) {
          std::string_view two = s_.substr(i, 2);
          if (two == "<=" || two == ">=" || two == "!=" || two == "==") {
            out.push_back({TokKind::kSym, std::string(two == "==" ? "=" : two),
                           i});
            i += 2;
            continue;
          }
        }
        out.push_back({TokKind::kSym, std::string(1, c), i});
        ++i;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_' || c == '/') {
        size_t j = i;
        bool all_digits = true;
        while (j < s_.size()) {
          char d = s_[j];
          if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
              d == '_' || d == '/') {
            if (!std::isdigit(static_cast<unsigned char>(d))) {
              all_digits = false;
            }
            ++j;
          } else {
            break;
          }
        }
        out.push_back({all_digits ? TokKind::kNumber : TokKind::kWord,
                       std::string(s_.substr(i, j - i)), i});
        i = j;
        continue;
      }
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(i));
    }
    out.push_back({TokKind::kEnd, "", s_.size()});
    return out;
  }

 private:
  std::string_view s_;
};

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// A reference to one dimension category ("Time.month").
struct DimRef {
  DimensionId dim;
  CategoryId category;
};

/// A parsed operand before classification.
struct Operand {
  enum class Kind { kDimRef, kNowExpr, kLiteral } kind;
  DimRef dimref{};          // kDimRef
  TimeOperand now{};        // kNowExpr
  std::string literal;      // kLiteral (time literal or value name)
};

class Parser {
 public:
  Parser(const MultidimensionalObject& mo, std::vector<Token> toks)
      : mo_(mo), toks_(std::move(toks)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  const Token& Next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool ConsumeSym(std::string_view s) {
    if (Peek().kind == TokKind::kSym && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeWord(std::string_view w) {
    if (Peek().kind == TokKind::kWord && IEquals(Peek().text, w)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::ParseError(what + " near offset " +
                              std::to_string(Peek().pos) + " ('" +
                              Peek().text + "')");
  }

  // --- Dimension references ------------------------------------------------

  std::optional<DimRef> TryResolveDimRef(std::string_view word) {
    size_t dot = word.rfind('.');
    while (dot != std::string_view::npos) {
      auto dres = mo_.DimensionByName(word.substr(0, dot));
      if (dres.ok()) {
        auto cres =
            mo_.dimension(dres.value())->type().CategoryByName(word.substr(dot + 1));
        if (cres.ok()) return DimRef{dres.value(), cres.value()};
      }
      dot = dot == 0 ? std::string_view::npos : word.rfind('.', dot - 1);
    }
    return std::nullopt;
  }

  // --- Predicate grammar ---------------------------------------------------

  Result<std::shared_ptr<PredExpr>> ParseOr() {
    DWRED_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    std::vector<std::shared_ptr<PredExpr>> kids{lhs};
    while (ConsumeWord("OR")) {
      DWRED_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      kids.push_back(rhs);
    }
    return kids.size() == 1 ? kids[0] : PredExpr::Or(std::move(kids));
  }

  Result<std::shared_ptr<PredExpr>> ParseAnd() {
    DWRED_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    std::vector<std::shared_ptr<PredExpr>> kids{lhs};
    while (ConsumeWord("AND")) {
      DWRED_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
      kids.push_back(rhs);
    }
    return kids.size() == 1 ? kids[0] : PredExpr::And(std::move(kids));
  }

  Result<std::shared_ptr<PredExpr>> ParseUnary() {
    if (ConsumeWord("NOT")) {
      DWRED_ASSIGN_OR_RETURN(auto inner, ParseUnary());
      return PredExpr::Not(inner);
    }
    if (ConsumeSym("(")) {
      DWRED_ASSIGN_OR_RETURN(auto inner, ParseOr());
      if (!ConsumeSym(")")) return Err("expected ')'");
      return inner;
    }
    if (ConsumeWord("TRUE")) return PredExpr::True();
    if (ConsumeWord("FALSE")) return PredExpr::False();
    return ParseAtomChain();
  }

  Result<Operand> ParseOperand() {
    const Token& t = Peek();
    if (t.kind == TokKind::kQuoted) {
      Next();
      return Operand{Operand::Kind::kLiteral, {}, {}, t.text};
    }
    if (t.kind == TokKind::kWord && IEquals(t.text, "NOW")) {
      Next();
      TimeOperand now;
      now.is_now = true;
      while (Peek().kind == TokKind::kSym &&
             (Peek().text == "+" || Peek().text == "-")) {
        // Only a span may follow (+/- <n> <unit>); otherwise this +/- belongs
        // to an enclosing context (not expected in this grammar).
        bool negative = Next().text == "-";
        if (Peek().kind != TokKind::kNumber) return Err("expected span count");
        int64_t count;
        if (!ParseInt64(Next().text, &count)) return Err("bad span count");
        if (Peek().kind != TokKind::kWord) return Err("expected span unit");
        DWRED_ASSIGN_OR_RETURN(
            TimeSpan span, ParseSpan(std::to_string(count) + " " + Next().text));
        if (negative) span.count = -span.count;
        switch (span.unit) {
          case TimeUnit::kDay: now.now_days += span.count; break;
          case TimeUnit::kWeek: now.now_days += span.count * 7; break;
          case TimeUnit::kMonth: now.now_months += span.count; break;
          case TimeUnit::kQuarter: now.now_months += span.count * 3; break;
          case TimeUnit::kYear: now.now_months += span.count * 12; break;
          case TimeUnit::kTop: return Err("TOP is not a span unit");
        }
      }
      return Operand{Operand::Kind::kNowExpr, {}, now, {}};
    }
    if (t.kind == TokKind::kWord || t.kind == TokKind::kNumber) {
      Next();
      if (t.kind == TokKind::kWord) {
        if (auto dr = TryResolveDimRef(t.text)) {
          return Operand{Operand::Kind::kDimRef, *dr, {}, {}};
        }
      }
      return Operand{Operand::Kind::kLiteral, {}, {}, t.text};
    }
    return Err("expected operand");
  }

  Result<CmpOp> ParseCmp() {
    const Token& t = Peek();
    if (t.kind == TokKind::kSym) {
      if (t.text == "<") { Next(); return CmpOp::kLt; }
      if (t.text == "<=") { Next(); return CmpOp::kLe; }
      if (t.text == ">") { Next(); return CmpOp::kGt; }
      if (t.text == ">=") { Next(); return CmpOp::kGe; }
      if (t.text == "=") { Next(); return CmpOp::kEq; }
      if (t.text == "!=") { Next(); return CmpOp::kNe; }
    }
    return Err("expected comparison operator");
  }

  bool PeekIsCmp() const {
    const Token& t = Peek();
    return t.kind == TokKind::kSym &&
           (t.text == "<" || t.text == "<=" || t.text == ">" ||
            t.text == ">=" || t.text == "=" || t.text == "!=");
  }

  /// Builds a resolved atom from a column, operator and literal operand.
  Result<Atom> MakeAtom(DimRef col, CmpOp op, const Operand& rhs) {
    const Dimension& dim = *mo_.dimension(col.dim);
    Atom a;
    a.dim = col.dim;
    a.category = col.category;
    a.op = op;
    a.is_time = dim.is_time();
    if (a.is_time) {
      TimeUnit unit = static_cast<TimeUnit>(col.category);
      if (rhs.kind == Operand::Kind::kNowExpr) {
        a.time_operands.push_back(rhs.now);
      } else if (rhs.kind == Operand::Kind::kLiteral) {
        DWRED_ASSIGN_OR_RETURN(TimeGranule g, ParseGranule(rhs.literal));
        if (g.unit != unit) {
          return Status::ParseError(
              "time literal '" + rhs.literal + "' has granularity " +
              TimeUnitName(g.unit) + " but is compared with category " +
              TimeUnitName(unit) + " (grammar requires Type(tt) = C)");
        }
        TimeOperand opnd;
        opnd.is_now = false;
        opnd.fixed = g;
        a.time_operands.push_back(opnd);
      } else {
        return Status::ParseError("cannot compare two dimension references");
      }
      return a;
    }
    // Categorical: only equality/membership are defined on interned values.
    if (op != CmpOp::kEq && op != CmpOp::kNe && op != CmpOp::kIn &&
        op != CmpOp::kNotIn) {
      return Status::ParseError(
          "ordered comparison on categorical dimension " + dim.name() +
          " (operator not defined for this value type)");
    }
    if (rhs.kind != Operand::Kind::kLiteral) {
      return Status::ParseError("expected a value literal for dimension " +
                                dim.name());
    }
    auto vres = dim.ValueByName(col.category, rhs.literal);
    if (!vres.ok()) return vres.status();
    a.values.push_back(vres.value());
    return a;
  }

  Result<std::shared_ptr<PredExpr>> ParseAtomChain() {
    DWRED_ASSIGN_OR_RETURN(Operand first, ParseOperand());

    // IN / NOT IN.
    bool negated_in = false;
    size_t save = pos_;
    if (ConsumeWord("NOT")) {
      if (IEquals(Peek().text, "IN")) {
        negated_in = true;
      } else {
        pos_ = save;
      }
    }
    if (ConsumeWord("IN")) {
      if (first.kind != Operand::Kind::kDimRef) {
        return Err("left side of IN must be a Dimension.category reference");
      }
      if (!ConsumeSym("{")) return Err("expected '{' after IN");
      Atom a;
      const Dimension& dim = *mo_.dimension(first.dimref.dim);
      a.dim = first.dimref.dim;
      a.category = first.dimref.category;
      a.op = negated_in ? CmpOp::kNotIn : CmpOp::kIn;
      a.is_time = dim.is_time();
      while (true) {
        DWRED_ASSIGN_OR_RETURN(Operand el, ParseOperand());
        if (a.is_time) {
          TimeUnit unit = static_cast<TimeUnit>(a.category);
          if (el.kind == Operand::Kind::kNowExpr) {
            a.time_operands.push_back(el.now);
          } else if (el.kind == Operand::Kind::kLiteral) {
            DWRED_ASSIGN_OR_RETURN(TimeGranule g, ParseGranule(el.literal));
            if (g.unit != unit) {
              return Status::ParseError("set element '" + el.literal +
                                        "' has the wrong granularity");
            }
            TimeOperand opnd;
            opnd.fixed = g;
            a.time_operands.push_back(opnd);
          } else {
            return Err("bad set element");
          }
        } else {
          if (el.kind != Operand::Kind::kLiteral) return Err("bad set element");
          auto vres = dim.ValueByName(a.category, el.literal);
          if (!vres.ok()) return vres.status();
          a.values.push_back(vres.value());
        }
        if (ConsumeSym(",")) continue;
        if (ConsumeSym("}")) break;
        return Err("expected ',' or '}' in set");
      }
      std::sort(a.values.begin(), a.values.end());
      return PredExpr::MakeAtom(std::move(a));
    }

    // Comparison chain: x op y [op z].
    DWRED_ASSIGN_OR_RETURN(CmpOp op1, ParseCmp());
    DWRED_ASSIGN_OR_RETURN(Operand second, ParseOperand());

    if (PeekIsCmp()) {
      // a op1 b op2 c: b must be the column.
      DWRED_ASSIGN_OR_RETURN(CmpOp op2, ParseCmp());
      DWRED_ASSIGN_OR_RETURN(Operand third, ParseOperand());
      if (second.kind != Operand::Kind::kDimRef) {
        return Err("middle of a comparison chain must be a column reference");
      }
      DWRED_ASSIGN_OR_RETURN(Atom left,
                             MakeAtom(second.dimref, MirrorOp(op1), first));
      DWRED_ASSIGN_OR_RETURN(Atom right, MakeAtom(second.dimref, op2, third));
      return PredExpr::And({PredExpr::MakeAtom(std::move(left)),
                            PredExpr::MakeAtom(std::move(right))});
    }

    if (first.kind == Operand::Kind::kDimRef &&
        second.kind == Operand::Kind::kDimRef) {
      return Err("cannot compare two column references");
    }
    if (first.kind == Operand::Kind::kDimRef) {
      DWRED_ASSIGN_OR_RETURN(Atom a, MakeAtom(first.dimref, op1, second));
      return PredExpr::MakeAtom(std::move(a));
    }
    if (second.kind == Operand::Kind::kDimRef) {
      DWRED_ASSIGN_OR_RETURN(Atom a,
                             MakeAtom(second.dimref, MirrorOp(op1), first));
      return PredExpr::MakeAtom(std::move(a));
    }
    return Err("comparison needs a Dimension.category reference on one side");
  }

  // --- Action --------------------------------------------------------------

  Result<Action> ParseActionBody(std::string_view original_text,
                                 std::string name) {
    // Optional "p(" wrapper.
    if (Peek().kind == TokKind::kWord && IEquals(Peek().text, "p") &&
        Peek(1).kind == TokKind::kSym && Peek(1).text == "(") {
      Next();
      Next();
    }
    Action action;
    action.granularity.assign(mo_.num_dimensions(), kInvalidCategory);

    // Deletion actions (the Section 8 extension): "d s[Pexp]" — no Clist;
    // the action sits above every aggregation level.
    if (Peek().kind == TokKind::kWord &&
        (IEquals(Peek().text, "d") || IEquals(Peek().text, "delete"))) {
      Next();
      action.deletes = true;
      for (size_t d = 0; d < mo_.num_dimensions(); ++d) {
        action.granularity[d] = mo_.dimension(static_cast<DimensionId>(d))
                                    ->type()
                                    .top();
      }
      return ParseSelectionAndFinish(std::move(action), original_text,
                                     std::move(name));
    }

    if (!(Peek().kind == TokKind::kWord &&
          (IEquals(Peek().text, "a") || IEquals(Peek().text, "alpha") ||
           IEquals(Peek().text, "aggregate")))) {
      return Err("expected aggregation operator 'a[...]' or deletion 'd'");
    }
    Next();
    if (!ConsumeSym("[")) return Err("expected '[' after 'a'");
    while (true) {
      const Token& t = Peek();
      if (t.kind != TokKind::kWord) return Err("expected Dimension.category");
      auto dr = TryResolveDimRef(t.text);
      if (!dr) {
        return Status::ParseError("unknown Dimension.category '" + t.text +
                                  "'");
      }
      Next();
      if (action.granularity[dr->dim] != kInvalidCategory) {
        return Status::ParseError("two Clist entries for dimension " +
                                  mo_.dimension(dr->dim)->name());
      }
      action.granularity[dr->dim] = dr->category;
      if (ConsumeSym(",")) continue;
      if (ConsumeSym("]")) break;
      return Err("expected ',' or ']' in Clist");
    }
    for (size_t d = 0; d < mo_.num_dimensions(); ++d) {
      if (action.granularity[d] == kInvalidCategory) {
        return Status::ParseError(
            "Clist must contain exactly one category per dimension; missing " +
            mo_.dimension(static_cast<DimensionId>(d))->name());
      }
    }

    return ParseSelectionAndFinish(std::move(action), original_text,
                                   std::move(name));
  }

  Result<Action> ParseSelectionAndFinish(Action action,
                                         std::string_view original_text,
                                         std::string name) {
    if (!(Peek().kind == TokKind::kWord &&
          (IEquals(Peek().text, "s") || IEquals(Peek().text, "sigma") ||
           IEquals(Peek().text, "where")))) {
      return Err("expected selection operator 's[...]'");
    }
    Next();
    if (!ConsumeSym("[")) return Err("expected '[' after 's'");
    DWRED_ASSIGN_OR_RETURN(action.predicate, ParseOr());
    if (!ConsumeSym("]")) return Err("expected ']' after predicate");

    // Optional "(O)" / "(Obj)" and closing ")" noise.
    if (ConsumeSym("(")) {
      if (Peek().kind == TokKind::kWord) Next();
      if (!ConsumeSym(")")) return Err("expected ')' after object name");
    }
    ConsumeSym(")");
    if (!AtEnd()) return Err("trailing input after action");

    // Semantic constraint: the action may not aggregate a dimension above a
    // category its predicate references in that dimension (Section 4.1).
    // Deletion actions are exempt — they never produce facts the predicate
    // would have to be re-evaluated on; the user is responsible for
    // predicating at or above the granularities aggregation actions produce
    // (see DESIGN.md on the deletion extension).
    if (!action.deletes) {
      Status st = CheckPredicateCategories(*action.predicate, action);
      if (!st.ok()) return st;
    }

    action.source_text = std::string(original_text);
    action.name = std::move(name);
    return action;
  }

  Status CheckPredicateCategories(const PredExpr& e, const Action& action) {
    if (e.kind == PredExpr::Kind::kAtom) {
      const Atom& a = e.atom;
      const DimensionType& t = mo_.dimension(a.dim)->type();
      if (!t.Leq(action.granularity[a.dim], a.category)) {
        return Status::InvalidArgument(
            "action aggregates " + mo_.dimension(a.dim)->name() + " to " +
            t.category_name(action.granularity[a.dim]) +
            ", above predicate category " + t.category_name(a.category) +
            " — the predicate would become unevaluable (Section 4.1)");
      }
      return Status::OK();
    }
    for (const auto& k : e.kids) {
      DWRED_RETURN_IF_ERROR(CheckPredicateCategories(*k, action));
    }
    return Status::OK();
  }

  const MultidimensionalObject& mo_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

namespace {

/// Counts one ParseAction attempt by outcome.
void RecordParseOutcome(bool ok) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter& parsed = registry.GetCounter(
      "dwred_spec_actions_parsed", "action texts parsed successfully");
  static obs::Counter& rejected = registry.GetCounter(
      "dwred_spec_actions_rejected",
      "action texts rejected by the parser (lex, grammar, or semantics)");
  (ok ? parsed : rejected).Increment();
}

}  // namespace

Result<Action> ParseAction(const MultidimensionalObject& mo,
                           std::string_view text, std::string name) {
  Lexer lex(text);
  auto toks = lex.Lex();
  if (!toks.ok()) {
    RecordParseOutcome(false);
    return toks.status();
  }
  Parser p(mo, toks.take());
  Result<Action> action = p.ParseActionBody(text, std::move(name));
  RecordParseOutcome(action.ok());
  return action;
}

Result<std::shared_ptr<PredExpr>> ParsePredicate(
    const MultidimensionalObject& mo, std::string_view text) {
  Lexer lex(text);
  DWRED_ASSIGN_OR_RETURN(auto toks, lex.Lex());
  Parser p(mo, std::move(toks));
  auto res = p.ParseOr();
  if (!res.ok()) return res;
  if (!p.AtEnd()) return Status::ParseError("trailing input after predicate");
  return res;
}

Result<std::vector<CategoryId>> ParseGranularityList(
    const MultidimensionalObject& mo, std::string_view text) {
  std::vector<CategoryId> out(mo.num_dimensions(), kInvalidCategory);
  for (const std::string& part : Split(text, ',')) {
    std::string_view ref = Trim(part);
    size_t dot = ref.rfind('.');
    if (dot == std::string_view::npos) {
      return Status::ParseError("expected Dimension.category: " +
                                std::string(ref));
    }
    DWRED_ASSIGN_OR_RETURN(DimensionId d,
                           mo.DimensionByName(ref.substr(0, dot)));
    DWRED_ASSIGN_OR_RETURN(
        CategoryId c, mo.dimension(d)->type().CategoryByName(ref.substr(dot + 1)));
    if (out[d] != kInvalidCategory) {
      return Status::ParseError("dimension listed twice: " + std::string(ref));
    }
    out[d] = c;
  }
  for (size_t d = 0; d < out.size(); ++d) {
    if (out[d] == kInvalidCategory) {
      return Status::ParseError(
          "granularity list missing dimension " +
          mo.dimension(static_cast<DimensionId>(d))->name());
    }
  }
  return out;
}

}  // namespace dwred
