#include "spec/action.h"

#include <algorithm>

namespace dwred {

std::string Action::ToString(const MultidimensionalObject& mo) const {
  if (deletes) {
    std::string out = "p(d s[";
    out += predicate ? predicate->ToString(mo) : "true";
    out += "](O))";
    return out;
  }
  std::string out = "p(a[";
  for (size_t d = 0; d < granularity.size(); ++d) {
    if (d) out += ", ";
    const Dimension& dim = *mo.dimension(static_cast<DimensionId>(d));
    out += dim.name() + "." + dim.type().category_name(granularity[d]);
  }
  out += "] s[";
  out += predicate ? predicate->ToString(mo) : "true";
  out += "](O))";
  return out;
}

bool GranularityLeq(const MultidimensionalObject& mo,
                    const std::vector<CategoryId>& g1,
                    const std::vector<CategoryId>& g2) {
  for (size_t d = 0; d < g1.size(); ++d) {
    if (!mo.dimension(static_cast<DimensionId>(d))->type().Leq(g1[d], g2[d])) {
      return false;
    }
  }
  return true;
}

void ReductionSpecification::Remove(const std::vector<ActionId>& ids) {
  std::vector<bool> drop(actions_.size(), false);
  for (ActionId id : ids) {
    if (id < actions_.size()) drop[id] = true;
  }
  std::vector<Action> kept;
  kept.reserve(actions_.size());
  for (size_t i = 0; i < actions_.size(); ++i) {
    if (!drop[i]) kept.push_back(std::move(actions_[i]));
  }
  actions_ = std::move(kept);
}

}  // namespace dwred
