#pragma once

// Predicate normalization and compiled constraints — the pre-processing step
// of paper Section 5.3: predicates are put in disjunctive normal form and
// each action conceptually split into one action per conjunct, so that every
// conjunct is a conjunction of (range) predicates per dimension.
//
// Each conjunct is compiled into
//  * a symbolic day-level time interval for the Time dimension: inclusive
//    lower/upper bounds that are fixed days or NOW-relative expressions
//    (month-family and day-family offsets) snapped to the granule of the
//    category they constrain; and
//  * per-dimension categorical set constraints evaluated by rollup.
//
// These compiled forms drive the operational NonCrossing check (Section 5.2),
// the Growing check's growth classification and boundary-coverage implication
// (Section 5.3), and the subcube engine's disjoint-region reasoning
// (Section 7).

#include <optional>
#include <vector>

#include "spec/action.h"

namespace dwred {

/// An inclusive day-level time bound, possibly NOW-relative.
struct SymTimeBound {
  enum class Kind : uint8_t { kFixed, kNow };
  Kind kind = Kind::kFixed;
  int64_t fixed_day = 0;  ///< kFixed: the inclusive bound, already snapped

  // kNow: bound(t) = Snap(ShiftDays(t, months via calendar) + days) + extra.
  int64_t months = 0;
  int64_t days = 0;
  int64_t extra_days = 0;
  TimeUnit snap_unit = TimeUnit::kDay;
  bool snap_first = true;  ///< snap to FirstDayOf (else LastDayOf)

  /// Concrete inclusive day bound once NOW is bound to `now_day`.
  int64_t EvalDay(int64_t now_day) const;
};

/// Conjoined time constraints of one conjunct, as day-interval bounds.
/// The realized interval at time t is
///   [ max over lowers (or -inf), min over uppers (or +inf) ].
struct TimeConstraint {
  std::vector<SymTimeBound> lowers;
  std::vector<SymTimeBound> uppers;
  /// False when some atom is not representable as a single interval (!=,
  /// multi-element IN, NOT IN): the bounds then over-approximate the true
  /// set. Over-approximation is safe for overlap detection (conservative
  /// rejection) but not for coverage claims.
  bool exact = true;

  bool Unbounded() const { return lowers.empty() && uppers.empty(); }
  bool HasNowLower() const;
  bool HasNowUpper() const;

  /// Concrete inclusive bounds at `now_day` (kDayNegInf/kDayPosInf if absent).
  int64_t LowerDay(int64_t now_day) const;
  int64_t UpperDay(int64_t now_day) const;

  /// The bound achieving LowerDay at `now_day` (nullptr if unbounded below).
  const SymTimeBound* BindingLower(int64_t now_day) const;
};

inline constexpr int64_t kDayNegInf = INT64_MIN / 4;
inline constexpr int64_t kDayPosInf = INT64_MAX / 4;

/// One primitive categorical set constraint: rollup(v, category) must (not)
/// be in `values`.
struct SetConstraint {
  CategoryId category = kInvalidCategory;
  bool include = true;
  std::vector<ValueId> values;  ///< sorted
};

/// All categorical constraints of one conjunct on one dimension.
struct CatConstraint {
  std::vector<SetConstraint> constraints;

  bool Unconstrained() const { return constraints.empty(); }

  /// True when a value (of any category) satisfies every set constraint,
  /// mirroring atom evaluation: a rollup that does not exist fails an include
  /// and fails an exclude (the atom would evaluate false either way).
  bool Allows(const Dimension& dim, ValueId v) const;
};

/// One DNF conjunct, compiled.
struct Conjunct {
  std::vector<Atom> atoms;           ///< the (possibly negated) atoms
  TimeConstraint time;               ///< constraints on the time dimension
  int time_dim = -1;                 ///< index of the time dimension, -1 none
  std::vector<CatConstraint> cats;   ///< per dimension (empty for time dim)
  bool always_false = false;

  /// Exact satisfiability of the conjunct's atoms by some cell of *existing*
  /// dimension values at concrete time `now_day`.
  bool SatisfiableAt(const MultidimensionalObject& mo, int64_t now_day) const;
};

/// Puts a predicate in DNF (NOT pushed onto atoms, AND distributed over OR)
/// and compiles each conjunct. Conjuncts that are syntactically false are
/// dropped; an always-true predicate yields one unconstrained conjunct.
/// Fails if the DNF exceeds `max_conjuncts` (guards pathological inputs).
Result<std::vector<Conjunct>> CompileToDnf(const MultidimensionalObject& mo,
                                           const PredExpr& pred,
                                           size_t max_conjuncts = 4096);

/// Candidate cell values for enumerating one dimension's region: the extent
/// of the enumeration category — the GLB of every category referenced by
/// `filters` and `reference` on this dimension — filtered to the values
/// allowed by every constraint in `filters`. `reference` constraints only
/// contribute their categories to the GLB (so later Allows() tests against
/// them are decided by rollup). Null entries are skipped. Returns the
/// enumeration category via `enum_cat_out`; when nothing references the
/// dimension the dimension is a wildcard and an empty vector is returned with
/// `enum_cat_out` = kInvalidCategory.
std::vector<ValueId> CandidateValues(
    const Dimension& dim, const std::vector<const CatConstraint*>& filters,
    const std::vector<const CatConstraint*>& reference,
    CategoryId* enum_cat_out);

}  // namespace dwred
