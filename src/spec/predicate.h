#pragma once

// Selection predicates of the data-reduction specification language (paper
// Table 1). A predicate is a boolean combination of atoms; an atom compares
// one dimension category against a literal, a NOW-relative time expression,
// or a literal set:
//
//   C_Time_j  op  tt           tt ::= fixed time | NOW ± span ± span ...
//   C_Time_j  IN  {tt, ...}
//   C_i_j     op  d            d a dimension value literal
//   C_i_j     IN  {d, ...}
//   true | false
//
// Atoms are resolved against a concrete MO at parse time (dimension ids,
// category ids, interned ValueIds, time granules), so evaluation is cheap.
// The DNF transform (paper Section 5.3 pre-processing) and the per-conjunct,
// per-dimension compiled constraints used by the NonCrossing/Growing checkers
// live in predicate_analysis.h.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chrono/granule.h"
#include "common/status.h"
#include "mdm/mo.h"

namespace dwred {

/// Comparison operators of the grammar.
enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe, kIn, kNotIn };

const char* CmpOpName(CmpOp op);
/// Logical negation of an operator (for pushing NOT inward).
CmpOp NegateOp(CmpOp op);
/// Mirror of an operator (for `lit op column` -> `column op' lit`).
CmpOp MirrorOp(CmpOp op);

/// A time operand: a fixed granule or NOW shifted by spans. The operand is
/// typed at the category it is compared against (grammar: Type(tt) = C); a
/// NOW expression is coerced to that category's granularity when NOW is bound
/// (eq. (9)).
struct TimeOperand {
  bool is_now = false;
  TimeGranule fixed{};              ///< when !is_now
  int64_t now_months = 0;           ///< month-family offset (months/quarters/years)
  int64_t now_days = 0;             ///< day-family offset (days/weeks)

  /// The concrete granule at `unit` once NOW is bound to `now_day`.
  TimeGranule Resolve(int64_t now_day, TimeUnit unit) const;

  std::string ToString(TimeUnit unit) const;
};

/// One comparison atom, fully resolved against an MO.
struct Atom {
  DimensionId dim = 0;
  CategoryId category = kInvalidCategory;
  CmpOp op = CmpOp::kEq;
  bool is_time = false;

  // Time operands (category's unit is the granularity).
  std::vector<TimeOperand> time_operands;  ///< 1 for binary ops, n for IN

  // Categorical operands (ValueIds in `category`).
  std::vector<ValueId> values;  ///< 1 for binary ops, n for IN; sorted for IN

  std::string ToString(const MultidimensionalObject& mo) const;
};

/// Boolean expression tree over atoms.
struct PredExpr {
  enum class Kind : uint8_t { kTrue, kFalse, kAtom, kNot, kAnd, kOr };
  Kind kind = Kind::kTrue;
  Atom atom;                                    ///< kAtom
  std::vector<std::shared_ptr<PredExpr>> kids;  ///< kNot (1), kAnd/kOr (>=2)

  static std::shared_ptr<PredExpr> True();
  static std::shared_ptr<PredExpr> False();
  static std::shared_ptr<PredExpr> MakeAtom(Atom a);
  static std::shared_ptr<PredExpr> Not(std::shared_ptr<PredExpr> e);
  static std::shared_ptr<PredExpr> And(std::vector<std::shared_ptr<PredExpr>> es);
  static std::shared_ptr<PredExpr> Or(std::vector<std::shared_ptr<PredExpr>> es);

  std::string ToString(const MultidimensionalObject& mo) const;
};

/// Evaluates one atom against a cell (one direct value per dimension) at time
/// `now_day`. The cell value in the atom's dimension is rolled up to the
/// atom's category; if the rollup does not exist (value in an unrelated or
/// higher category) the atom is unsatisfied — the grammar's constraint that
/// actions aggregate no higher than their predicate categories guarantees
/// evaluability for the facts an action governs (paper Section 4.1).
bool EvalAtomOnCell(const Atom& atom, const MultidimensionalObject& mo,
                    std::span<const ValueId> cell, int64_t now_day);

/// Evaluates a predicate tree against a cell.
bool EvalPredOnCell(const PredExpr& e, const MultidimensionalObject& mo,
                    std::span<const ValueId> cell, int64_t now_day);

/// Evaluates a predicate tree against a fact's direct cell. This is the
/// membership test of the paper's Pred(a, t) (eq. (9)) restricted to the
/// cells facts actually map to (eq. (11)).
bool EvalPredOnFact(const PredExpr& e, const MultidimensionalObject& mo,
                    FactId f, int64_t now_day);

}  // namespace dwred
