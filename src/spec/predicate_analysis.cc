#include "spec/predicate_analysis.h"

#include <algorithm>

#include "common/check.h"

namespace dwred {

int64_t SymTimeBound::EvalDay(int64_t now_day) const {
  if (kind == Kind::kFixed) return fixed_day;
  int64_t d = ShiftDays(now_day, TimeSpan{TimeUnit::kMonth, months}) + days;
  TimeGranule g = GranuleOfDay(d, snap_unit);
  return (snap_first ? FirstDayOf(g) : LastDayOf(g)) + extra_days;
}

bool TimeConstraint::HasNowLower() const {
  for (const auto& b : lowers) {
    if (b.kind == SymTimeBound::Kind::kNow) return true;
  }
  return false;
}

bool TimeConstraint::HasNowUpper() const {
  for (const auto& b : uppers) {
    if (b.kind == SymTimeBound::Kind::kNow) return true;
  }
  return false;
}

int64_t TimeConstraint::LowerDay(int64_t now_day) const {
  int64_t lo = kDayNegInf;
  for (const auto& b : lowers) lo = std::max(lo, b.EvalDay(now_day));
  return lo;
}

int64_t TimeConstraint::UpperDay(int64_t now_day) const {
  int64_t hi = kDayPosInf;
  for (const auto& b : uppers) hi = std::min(hi, b.EvalDay(now_day));
  return hi;
}

const SymTimeBound* TimeConstraint::BindingLower(int64_t now_day) const {
  const SymTimeBound* best = nullptr;
  int64_t best_day = kDayNegInf;
  for (const auto& b : lowers) {
    int64_t d = b.EvalDay(now_day);
    if (d >= best_day) {
      best_day = d;
      best = &b;
    }
  }
  return best;
}

bool CatConstraint::Allows(const Dimension& dim, ValueId v) const {
  for (const SetConstraint& sc : constraints) {
    ValueId r = dim.Rollup(v, sc.category);
    if (r == kInvalidValue) return false;
    bool in = std::binary_search(sc.values.begin(), sc.values.end(), r);
    if (sc.include != in) return false;
  }
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// Negation-normal form + DNF on atom lists.
// ---------------------------------------------------------------------------

struct NnfConjunct {
  std::vector<Atom> atoms;
};

/// DNF as a list of conjuncts; `is_true` marks the tautology (one empty
/// conjunct); an empty list is false.
using Dnf = std::vector<NnfConjunct>;

Result<Dnf> ToDnf(const PredExpr& e, bool negated, size_t max_conjuncts) {
  switch (e.kind) {
    case PredExpr::Kind::kTrue:
      if (negated) return Dnf{};
      return Dnf{NnfConjunct{}};
    case PredExpr::Kind::kFalse:
      if (negated) return Dnf{NnfConjunct{}};
      return Dnf{};
    case PredExpr::Kind::kAtom: {
      Atom a = e.atom;
      if (negated) a.op = NegateOp(a.op);
      return Dnf{NnfConjunct{{std::move(a)}}};
    }
    case PredExpr::Kind::kNot:
      return ToDnf(*e.kids[0], !negated, max_conjuncts);
    case PredExpr::Kind::kAnd:
    case PredExpr::Kind::kOr: {
      bool is_or = (e.kind == PredExpr::Kind::kOr) != negated;
      if (is_or) {
        Dnf out;
        for (const auto& k : e.kids) {
          DWRED_ASSIGN_OR_RETURN(Dnf sub, ToDnf(*k, negated, max_conjuncts));
          for (auto& c : sub) out.push_back(std::move(c));
          if (out.size() > max_conjuncts) {
            return Status::InvalidArgument("predicate DNF too large");
          }
        }
        return out;
      }
      // AND: distribute.
      Dnf acc{NnfConjunct{}};
      for (const auto& k : e.kids) {
        DWRED_ASSIGN_OR_RETURN(Dnf sub, ToDnf(*k, negated, max_conjuncts));
        Dnf next;
        for (const auto& a : acc) {
          for (const auto& b : sub) {
            NnfConjunct merged = a;
            merged.atoms.insert(merged.atoms.end(), b.atoms.begin(),
                                b.atoms.end());
            next.push_back(std::move(merged));
            if (next.size() > max_conjuncts) {
              return Status::InvalidArgument("predicate DNF too large");
            }
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
  }
  return Status::Internal("unreachable predicate kind");
}

// ---------------------------------------------------------------------------
// Atom compilation.
// ---------------------------------------------------------------------------

SymTimeBound MakeBound(const TimeOperand& opnd, TimeUnit unit, bool snap_first,
                       int64_t extra) {
  SymTimeBound b;
  if (opnd.is_now) {
    b.kind = SymTimeBound::Kind::kNow;
    b.months = opnd.now_months;
    b.days = opnd.now_days;
    b.snap_unit = unit;
    b.snap_first = snap_first;
    b.extra_days = extra;
  } else {
    b.kind = SymTimeBound::Kind::kFixed;
    b.fixed_day =
        (snap_first ? FirstDayOf(opnd.fixed) : LastDayOf(opnd.fixed)) + extra;
  }
  return b;
}

void CompileTimeAtom(const Atom& a, TimeConstraint* tc) {
  TimeUnit unit = static_cast<TimeUnit>(a.category);
  if (unit == TimeUnit::kTop) {
    // Constraints at TOP are vacuous (= T is true, != T is false — the parser
    // cannot produce them since TOP has no literals; IN at TOP likewise).
    return;
  }
  switch (a.op) {
    case CmpOp::kLe:  // day <= LastDayOf(g)
      tc->uppers.push_back(MakeBound(a.time_operands[0], unit, false, 0));
      break;
    case CmpOp::kLt:  // day <= FirstDayOf(g) - 1
      tc->uppers.push_back(MakeBound(a.time_operands[0], unit, true, -1));
      break;
    case CmpOp::kGe:  // day >= FirstDayOf(g)
      tc->lowers.push_back(MakeBound(a.time_operands[0], unit, true, 0));
      break;
    case CmpOp::kGt:  // day >= LastDayOf(g) + 1
      tc->lowers.push_back(MakeBound(a.time_operands[0], unit, false, 1));
      break;
    case CmpOp::kEq:
      tc->lowers.push_back(MakeBound(a.time_operands[0], unit, true, 0));
      tc->uppers.push_back(MakeBound(a.time_operands[0], unit, false, 0));
      break;
    case CmpOp::kIn:
      if (a.time_operands.size() == 1) {
        tc->lowers.push_back(MakeBound(a.time_operands[0], unit, true, 0));
        tc->uppers.push_back(MakeBound(a.time_operands[0], unit, false, 0));
      } else {
        // Outer bounds over-approximate the union; mark inexact.
        bool all_fixed = true;
        for (const auto& o : a.time_operands) {
          if (o.is_now) all_fixed = false;
        }
        if (all_fixed) {
          int64_t lo = kDayPosInf, hi = kDayNegInf;
          for (const auto& o : a.time_operands) {
            lo = std::min(lo, FirstDayOf(o.fixed));
            hi = std::max(hi, LastDayOf(o.fixed));
          }
          SymTimeBound lob, hib;
          lob.fixed_day = lo;
          hib.fixed_day = hi;
          tc->lowers.push_back(lob);
          tc->uppers.push_back(hib);
        }
        tc->exact = false;
      }
      break;
    case CmpOp::kNe:
    case CmpOp::kNotIn:
      // Not a single interval; no bounds, inexact.
      tc->exact = false;
      break;
    default:
      break;
  }
}

void CompileCatAtom(const Atom& a, CatConstraint* cc) {
  SetConstraint sc;
  sc.category = a.category;
  sc.values = a.values;
  std::sort(sc.values.begin(), sc.values.end());
  sc.include = (a.op == CmpOp::kEq || a.op == CmpOp::kIn);
  cc->constraints.push_back(std::move(sc));
}

}  // namespace

bool Conjunct::SatisfiableAt(const MultidimensionalObject& mo,
                             int64_t now_day) const {
  if (always_false) return false;
  if (time_dim >= 0 && !time.Unbounded()) {
    if (time.LowerDay(now_day) > time.UpperDay(now_day)) return false;
  }
  for (size_t d = 0; d < cats.size(); ++d) {
    if (static_cast<int>(d) == time_dim || cats[d].Unconstrained()) continue;
    CategoryId enum_cat;
    std::vector<ValueId> cand = CandidateValues(
        *mo.dimension(static_cast<DimensionId>(d)), {&cats[d]}, {}, &enum_cat);
    if (cand.empty()) return false;
  }
  return true;
}

Result<std::vector<Conjunct>> CompileToDnf(const MultidimensionalObject& mo,
                                           const PredExpr& pred,
                                           size_t max_conjuncts) {
  DWRED_ASSIGN_OR_RETURN(Dnf dnf, ToDnf(pred, false, max_conjuncts));

  // Identify the time dimension (at most one in this model).
  int time_dim = -1;
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    if (mo.dimension(static_cast<DimensionId>(d))->is_time()) {
      time_dim = static_cast<int>(d);
      break;
    }
  }

  std::vector<Conjunct> out;
  for (auto& nc : dnf) {
    Conjunct c;
    c.time_dim = time_dim;
    c.cats.resize(mo.num_dimensions());
    c.atoms = std::move(nc.atoms);
    for (const Atom& a : c.atoms) {
      if (a.is_time) {
        CompileTimeAtom(a, &c.time);
      } else {
        CompileCatAtom(a, &c.cats[a.dim]);
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<ValueId> CandidateValues(
    const Dimension& dim, const std::vector<const CatConstraint*>& filters,
    const std::vector<const CatConstraint*>& reference,
    CategoryId* enum_cat_out) {
  // Collect every referenced category.
  std::vector<CategoryId> cats;
  auto collect = [&cats](const CatConstraint* cc) {
    if (!cc) return;
    for (const SetConstraint& sc : cc->constraints) cats.push_back(sc.category);
  };
  for (const CatConstraint* cc : filters) collect(cc);
  for (const CatConstraint* cc : reference) collect(cc);
  if (cats.empty()) {
    *enum_cat_out = kInvalidCategory;
    return {};
  }
  CategoryId enum_cat = dim.type().Glb(cats);
  *enum_cat_out = enum_cat;

  std::vector<ValueId> out;
  for (ValueId v : dim.CategoryExtent(enum_cat)) {
    bool ok = true;
    for (const CatConstraint* cc : filters) {
      if (cc && !cc->Allows(dim, v)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(v);
  }
  return out;
}

}  // namespace dwred
