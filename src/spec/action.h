#pragma once

// Data-reduction actions (paper Section 4.1): an action
// p(α[C_1j1, ..., C_njn] σ[P](O)) aggregates the facts satisfying P to the
// granularity (C_1j1, ..., C_njn) and deletes the detail facts. The Clist
// must name exactly one category per dimension, and may not aggregate any
// dimension above the categories P references in that dimension (so P stays
// evaluable on the aggregated facts).
//
// Actions are resolved against a concrete MO: the granularity is a vector of
// CategoryIds indexed by dimension, the predicate an AST of resolved atoms.

#include <memory>
#include <string>
#include <vector>

#include "spec/predicate.h"

namespace dwred {

/// One reduction action: an aggregation action p(α[Clist] σ[P](O)), or — the
/// extension the paper's Section 8 calls for — a deletion action
/// p(d σ[P](O)) that physically removes the matching facts instead of
/// aggregating them.
struct Action {
  /// The paper's Cat(a): target category per dimension (size = ndims). For a
  /// deletion action this holds the top categories (deletion sits above
  /// every aggregation level in the <=_V order).
  std::vector<CategoryId> granularity;
  /// The selection predicate P.
  std::shared_ptr<PredExpr> predicate;
  /// Original specification text (diagnostics / provenance).
  std::string source_text;
  /// Optional display name ("a1", "a2", ...).
  std::string name;
  /// True for a deletion action. Deletion is one step more irreversible than
  /// aggregation: nothing remains, so only another deletion action can cover
  /// a shrinking deletion in the Growing check.
  bool deletes = false;

  /// The paper's Cat_i(a).
  CategoryId Cat(DimensionId d) const { return granularity[d]; }

  /// Renders the action in the paper's notation.
  std::string ToString(const MultidimensionalObject& mo) const;
};

/// Granularity tuple ordering <=_p (paper eq. (6)): g1 <=_p g2 iff every
/// component is <=_T. Returns false when any component pair is unrelated.
bool GranularityLeq(const MultidimensionalObject& mo,
                    const std::vector<CategoryId>& g1,
                    const std::vector<CategoryId>& g2);

/// Action ordering <=_V (paper eq. (3)), extended so deletion dominates
/// every aggregation level: a <=_V d for every a when d deletes, and a
/// deletion action is only below other deletion actions.
inline bool ActionLeq(const MultidimensionalObject& mo, const Action& a1,
                      const Action& a2) {
  if (a2.deletes) return true;
  if (a1.deletes) return false;
  return GranularityLeq(mo, a1.granularity, a2.granularity);
}

/// A data reduction specification V = (A, <=_V) (paper Definition 1): a set
/// of actions under the granularity-induced partial order. The set itself is
/// a dumb container; the NonCrossing/Growing validation and the insert/delete
/// operators live in the reduce module.
class ReductionSpecification {
 public:
  ReductionSpecification() = default;

  ActionId Add(Action a) {
    actions_.push_back(std::move(a));
    return static_cast<ActionId>(actions_.size() - 1);
  }

  size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }
  const Action& action(ActionId id) const { return actions_[id]; }
  const std::vector<Action>& actions() const { return actions_; }

  /// Removes the given actions (ids refer to the current vector; remaining
  /// actions are compacted, preserving order).
  void Remove(const std::vector<ActionId>& ids);

 private:
  std::vector<Action> actions_;
};

}  // namespace dwred
