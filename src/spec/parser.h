#pragma once

// Parser for the data-reduction specification language (paper Table 1).
//
// Concrete syntax (ASCII rendering of the paper's notation):
//
//   action    := [ "p(" ] "a" "[" clist "]" "s" "[" pred "]" [ "(O)" ] [ ")" ]
//   clist     := dimref ("," dimref)*            -- one category per dimension
//   dimref    := <Dimension> "." <category>
//   pred      := or-expr in the usual precedence (NOT > AND > OR), with
//                parentheses, TRUE, FALSE
//   atom      := operand cmp operand [cmp operand]     -- chains a <= b <= c
//              | dimref [NOT] IN "{" operand ("," operand)* "}"
//   cmp       := "<" | "<=" | ">" | ">=" | "=" | "!="
//   operand   := dimref | timeexpr | value
//   timeexpr  := time literal ("1999/12/4", "1999W47", "1999/12", "1999Q4",
//                "1999") | NOW (("+"|"-") <n> unit)*
//   value     := bare word ([A-Za-z0-9./_]+) or 'single quoted string',
//                resolved in the category named by the dimref side
//
// Examples (the paper's a1 and a2):
//   a[Time.month, URL.domain] s[URL.domain_grp = .com AND
//       NOW - 12 months <= Time.month <= NOW - 6 months]
//   a[Time.quarter, URL.domain] s[URL.domain_grp = .com AND
//       Time.quarter <= NOW - 4 quarters]
//
// The parser resolves everything against the MO (dimensions, categories,
// interned values, granule typing) and enforces the grammar's semantic
// constraints: exactly one Clist entry per dimension; time literals typed at
// the category they are compared with; ordered comparisons only on the Time
// dimension; and Cat_i(a) <=_T the category of every predicate atom on
// dimension i, so predicates remain evaluable after aggregation.

#include <string_view>

#include "spec/action.h"

namespace dwred {

/// Parses a full action specification.
Result<Action> ParseAction(const MultidimensionalObject& mo,
                           std::string_view text, std::string name = "");

/// Parses a bare predicate (used by the query layer's selection operator).
Result<std::shared_ptr<PredExpr>> ParsePredicate(
    const MultidimensionalObject& mo, std::string_view text);

/// Parses a comma-separated granularity list "Time.month, URL.domain" (used
/// by the query layer's aggregate-formation operator).
Result<std::vector<CategoryId>> ParseGranularityList(
    const MultidimensionalObject& mo, std::string_view text);

}  // namespace dwred
