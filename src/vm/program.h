#pragma once

// Bytecode compilation of selection predicates and measure folds (the
// ROADMAP's "compile the hot tree walks" lever; see docs/COMPILATION.md).
//
// The hot loops of Reduce, Synchronize, and query selection all evaluate one
// predicate tree per row. Every atom of that tree depends on exactly one
// direct coordinate (EvalAtomOnCell / EvalQueryAtomOnValue read only
// cell[atom.dim]), so an atom is fully described by a per-ValueId weight
// table over its dimension's extent. PredProgram::Compile materializes those
// tables once — by asking the caller-supplied atom oracle for every interned
// value — and lowers the connective structure to a flat accumulator/stack
// bytecode whose short-circuit jumps and floating-point fold order replicate
// the interpreter *exactly*:
//
//   AND: left-fold product, short-circuit on 0.0   (kPush/kAnd/kJumpIfZero)
//   OR:  left-fold max,     short-circuit on 1.0   (kPush/kOr/kJumpIfOne)
//   NOT: 1 - w                                     (kNot)
//
// so compiled weights are bitwise identical to EvalQueryPredOnFact (weighted
// approach included) and, with a 0/1 oracle, to EvalPredOnCell. The tree is
// compiled as-is — NOT through the DNF transform — because weighted
// semantics are not DNF-invariant (max-of-products changes the weight of a
// negated disjunction); DNF stays where it always was, in ScanSpec pruning.
//
// Compilation is best-effort: a dimension too large to enumerate
// (> kMaxTableValues, matching ScanSpec's enumeration cap) or a tree deeper
// than the fixed evaluation stack yields nullopt and the caller falls back
// to the interpreter (counted by dwred_vm_fallbacks). Eval defends against
// coordinates interned *after* compilation (the epoch contract makes this a
// cache-keying bug, but exactness beats trust): an out-of-range coordinate
// returns kOutOfRange and the caller interprets that one row.
//
// The whole layer is disabled by the DWRED_VM_DISABLED environment variable
// (re-read on every decision point, same convention as DWRED_CACHE_DISABLED);
// disabling the VM never changes result bytes, only their cost.
//
// Observability: dwred_vm_compiles / dwred_vm_cache_hits / dwred_vm_fallbacks
// counters; OpProfile carries a `compiled` flag.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mdm/mo.h"
#include "mdm/schema.h"
#include "scan/scan.h"
#include "spec/predicate.h"

namespace dwred::vm {

/// True unless the DWRED_VM_DISABLED environment variable is set to a
/// non-empty value. Re-read on every call.
bool Enabled();

/// Bumps dwred_vm_fallbacks: an eligible site evaluated via the interpreter
/// (kill switch, compile rejection, or an out-of-range coordinate).
void CountFallback();
/// Bumps dwred_vm_cache_hits: a compiled program served from the cache.
void CountCacheHit();

/// A predicate compiled to flat bytecode over per-ValueId atom weight tables.
/// Immutable after compilation; safe to share read-only across the parallel
/// shard fan-out.
class PredProgram {
 public:
  /// Enumeration cap per atom table (same bound as ScanSpec compilation).
  static constexpr size_t kMaxTableValues = 1 << 16;
  /// Fixed evaluation stack; one slot per unfinished AND/OR fold.
  static constexpr size_t kMaxStackDepth = 64;
  /// Eval sentinel: a coordinate postdates compilation — interpret this row.
  static constexpr double kOutOfRange = -1.0;

  /// Lowers `pred` against the dimensions of `ctx`, with per-(atom, value)
  /// weights supplied by `oracle` (bind query/compare's EvalQueryAtomOnValue
  /// for selection weights, or SpecAtomOracle below for 0/1 spec
  /// predicates). Returns nullopt — caller falls back to the interpreter —
  /// when some atom's dimension exceeds kMaxTableValues or the tree needs
  /// more than kMaxStackDepth pending folds. Counts dwred_vm_compiles on
  /// success, dwred_vm_fallbacks on rejection.
  static std::optional<PredProgram> Compile(const MultidimensionalObject& ctx,
                                            const PredExpr& pred,
                                            const scan::AtomOracle& oracle);

  /// Evaluates the program on one row's direct cell (one ValueId per
  /// dimension of the compiling context). Returns the selection weight in
  /// [0, 1], or kOutOfRange when a coordinate is not covered by the compiled
  /// tables.
  double Eval(const ValueId* coords) const;
  double Eval(std::span<const ValueId> coords) const {
    return Eval(coords.data());
  }

  /// Reused buffers of EvalBatch — allocate one per scan shard, not per
  /// batch.
  struct BatchScratch {
    std::vector<double> stack;  ///< [max stack depth][lane]
    std::vector<uint8_t> oor;   ///< per-lane out-of-range flag
  };

  /// Evaluates the program over a column chunk of `n` rows: `cols[d]` holds
  /// lane i's coordinate of dimension d (the FactTable::BatchView::dim_cols
  /// shape) and `out[i]` receives lane i's weight — bitwise identical to
  /// Eval on that row's cell — or kOutOfRange when some coordinate of the
  /// lane is not covered by the compiled tables.
  ///
  /// The batch interpreter runs op-at-a-time across all lanes and treats the
  /// short-circuit jumps as no-ops, which is exact, not approximate: atom
  /// weights live in [0, 1] with no NaN and no -0.0, so once a lane's
  /// accumulator short-circuits an AND at 0.0 every further kAnd leaves it
  /// at 0.0 (0.0 * w == 0.0 for w in [0, 1]), and symmetrically 1.0 absorbs
  /// under kOr's max — executing the instructions the row path would have
  /// jumped over cannot change the lane's bits. An out-of-range coordinate
  /// inside a region the row path would have skipped merely over-flags the
  /// lane: the caller's per-row interpreter fallback recomputes the exact
  /// same weight the row path returns.
  void EvalBatch(const ValueId* const* cols, size_t n, double* out,
                 BatchScratch* scratch) const;

  /// Heap accounting for the compiled-program cache (counts capacity, like
  /// ScanSpec::ApproxBytes).
  size_t ApproxBytes() const;

  size_t num_instructions() const { return code_.size(); }
  size_t num_tables() const { return tables_.size(); }

 private:
  enum class Op : uint8_t {
    kConst,       ///< acc = arg ? 1.0 : 0.0
    kLoadTable,   ///< acc = table[arg][coords[table.dim]]
    kNot,         ///< acc = 1.0 - acc
    kPush,        ///< push(acc)
    kAnd,         ///< acc = pop() * acc        (interpreter's w *= kid)
    kOr,          ///< acc = max(pop(), acc)    (interpreter's w = max(w, kid))
    kJumpIfZero,  ///< if (acc == 0.0) ip = arg (AND short-circuit)
    kJumpIfOne,   ///< if (acc == 1.0) ip = arg (OR short-circuit)
  };
  struct Instr {
    Op op;
    uint32_t arg = 0;
  };
  struct Table {
    uint32_t dim = 0;     ///< dimension whose coordinate indexes the table
    uint32_t offset = 0;  ///< first weight in weights_
    uint32_t size = 0;    ///< extent covered at compile time
  };

  struct Compiler;

  std::vector<Instr> code_;
  std::vector<Table> tables_;
  std::vector<double> weights_;  ///< all atom tables, concatenated
  uint32_t max_depth_ = 0;  ///< deepest pending-fold stack Eval can reach
};

/// A 0/1 atom oracle over spec predicates: EvalAtomOnCell probed one
/// interned value at a time. `ctx` must outlive the returned oracle (use it
/// only within the compile call).
scan::AtomOracle SpecAtomOracle(const MultidimensionalObject& ctx,
                                int64_t now_day);

/// The per-row measure fold compiled to a flat aggregate list: one
/// CombineMeasure dispatch resolved per measure, applied with no per-row
/// MeasureType lookups. Trivially exact — it calls the same CombineMeasure.
class FoldProgram {
 public:
  static FoldProgram Compile(std::span<const MeasureType> measures);

  /// acc[m] = CombineMeasure(fn[m], acc[m], in[m]) for every measure.
  void Fold(int64_t* acc, const int64_t* in) const {
    for (size_t m = 0; m < fns_.size(); ++m) {
      acc[m] = CombineMeasure(fns_[m], acc[m], in[m]);
    }
  }

  size_t num_measures() const { return fns_.size(); }

 private:
  std::vector<AggFn> fns_;
};

/// Aggregate formation's per-fact hierarchy walks — one Leq + Rollup pair
/// per dimension per row — compiled to per-dimension lookup tables over the
/// dimension's extent: entry[v] is v's unique ancestor at the requested
/// category, or kNotBelow when v's category does not sit at or below it (the
/// caller applies its aggregation approach's rule for that case). Same
/// enumeration cap, fallback contract, and out-of-range defense as
/// PredProgram; byte-exact because the tables are filled by the very walks
/// they replace.
class RollupProgram {
 public:
  /// Table sentinel: the value's category is not <= the requested category.
  static constexpr ValueId kNotBelow = kInvalidValue;

  /// Builds one table per dimension targeting `want[d]`. Returns nullopt —
  /// caller walks per fact — when a dimension exceeds
  /// PredProgram::kMaxTableValues. Counts dwred_vm_compiles / fallbacks.
  static std::optional<RollupProgram> Compile(
      const std::vector<std::shared_ptr<Dimension>>& dims,
      std::span<const CategoryId> want);

  /// Maps one row's direct cell to its target cell. Returns false when some
  /// coordinate postdates compilation (caller walks that one row).
  bool Map(const ValueId* coords, ValueId* out) const {
    for (size_t d = 0; d < sizes_.size(); ++d) {
      const ValueId v = coords[d];
      if (v >= sizes_[d]) return false;
      out[d] = table_[offsets_[d] + v];
    }
    return true;
  }

  /// Raw per-dimension table access, for callers that pre-combine the tables
  /// into their own lookup structures (the columnar fused fold pre-shifts
  /// each dimension's rolled values into packed cell-key fields). A value id
  /// >= TableSize(d) postdates compilation — same contract as Map returning
  /// false.
  size_t TableSize(size_t d) const { return sizes_[d]; }
  ValueId TableAt(size_t d, ValueId v) const { return table_[offsets_[d] + v]; }

  size_t ApproxBytes() const;

 private:
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> sizes_;
  std::vector<ValueId> table_;  ///< all per-dimension tables, concatenated
};

}  // namespace dwred::vm
