#include "vm/program.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace dwred::vm {

bool Enabled() {
  const char* v = std::getenv("DWRED_VM_DISABLED");
  return v == nullptr || v[0] == '\0';
}

namespace {

obs::Counter& CompilesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_vm_compiles", "predicate programs compiled to bytecode");
  return c;
}

obs::Counter& CacheHitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_vm_cache_hits", "compiled predicate programs served from cache");
  return c;
}

obs::Counter& FallbacksCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_vm_fallbacks",
      "eligible evaluations that used the tree interpreter instead of the VM");
  return c;
}

}  // namespace

void CountFallback() { FallbacksCounter().Increment(); }
void CountCacheHit() { CacheHitsCounter().Increment(); }

// Recursive lowering. `depth` tracks slots of the fixed evaluation stack in
// use at the emit point (one per unfinished AND/OR fold); jump targets are
// backpatched to the first instruction after the connective's last kid.
struct PredProgram::Compiler {
  const MultidimensionalObject& ctx;
  const scan::AtomOracle& oracle;
  PredProgram p;
  bool ok = true;
  uint32_t depth = 0;
  // Structurally identical atoms (same dim/category/op/operands render the
  // same) share one table — DNF-shaped inputs repeat atoms heavily.
  std::map<std::string, uint32_t> table_index;

  Compiler(const MultidimensionalObject& c, const scan::AtomOracle& o)
      : ctx(c), oracle(o) {}

  uint32_t InternTable(const Atom& a) {
    std::string key = a.ToString(ctx);
    auto it = table_index.find(key);
    if (it != table_index.end()) return it->second;
    const Dimension& dim = *ctx.dimension(a.dim);
    const size_t extent = dim.num_values();
    if (extent > kMaxTableValues) {
      ok = false;
      return 0;
    }
    Table t;
    t.dim = static_cast<uint32_t>(a.dim);
    t.offset = static_cast<uint32_t>(p.weights_.size());
    t.size = static_cast<uint32_t>(extent);
    p.weights_.reserve(p.weights_.size() + extent);
    for (size_t v = 0; v < extent; ++v) {
      p.weights_.push_back(oracle(a, dim, static_cast<ValueId>(v)));
    }
    const uint32_t id = static_cast<uint32_t>(p.tables_.size());
    p.tables_.push_back(t);
    table_index.emplace(std::move(key), id);
    return id;
  }

  void Emit(const PredExpr& e) {
    if (!ok) return;
    switch (e.kind) {
      case PredExpr::Kind::kTrue:
        p.code_.push_back({Op::kConst, 1});
        return;
      case PredExpr::Kind::kFalse:
        p.code_.push_back({Op::kConst, 0});
        return;
      case PredExpr::Kind::kAtom: {
        const uint32_t t = InternTable(e.atom);
        if (!ok) return;
        p.code_.push_back({Op::kLoadTable, t});
        return;
      }
      case PredExpr::Kind::kNot:
        Emit(*e.kids[0]);
        p.code_.push_back({Op::kNot, 0});
        return;
      case PredExpr::Kind::kAnd:
      case PredExpr::Kind::kOr: {
        // Mirrors the interpreter's left fold with short-circuit checks
        // *after every kid*, including the first:
        //   kid0; J? end; (Push; kid_i; And/Or; J? end)*
        const bool is_and = e.kind == PredExpr::Kind::kAnd;
        const Op jump = is_and ? Op::kJumpIfZero : Op::kJumpIfOne;
        const Op fold = is_and ? Op::kAnd : Op::kOr;
        std::vector<size_t> patch;
        Emit(*e.kids[0]);
        if (!ok) return;
        patch.push_back(p.code_.size());
        p.code_.push_back({jump, 0});
        for (size_t i = 1; i < e.kids.size(); ++i) {
          p.code_.push_back({Op::kPush, 0});
          ++depth;
          if (depth > kMaxStackDepth) {
            ok = false;
            return;
          }
          p.max_depth_ = std::max(p.max_depth_, depth);
          Emit(*e.kids[i]);
          if (!ok) return;
          p.code_.push_back({fold, 0});
          --depth;
          if (i + 1 < e.kids.size()) {
            patch.push_back(p.code_.size());
            p.code_.push_back({jump, 0});
          }
        }
        const uint32_t end = static_cast<uint32_t>(p.code_.size());
        for (size_t at : patch) p.code_[at].arg = end;
        return;
      }
    }
  }
};

std::optional<PredProgram> PredProgram::Compile(
    const MultidimensionalObject& ctx, const PredExpr& pred,
    const scan::AtomOracle& oracle) {
  Compiler c(ctx, oracle);
  c.Emit(pred);
  if (!c.ok) {
    FallbacksCounter().Increment();
    return std::nullopt;
  }
  CompilesCounter().Increment();
  return std::move(c.p);
}

double PredProgram::Eval(const ValueId* coords) const {
  double stack[kMaxStackDepth];
  size_t sp = 0;
  double acc = 0.0;
  const Instr* code = code_.data();
  const size_t n = code_.size();
  for (size_t ip = 0; ip < n; ++ip) {
    const Instr in = code[ip];
    switch (in.op) {
      case Op::kConst:
        acc = in.arg != 0 ? 1.0 : 0.0;
        break;
      case Op::kLoadTable: {
        const Table& t = tables_[in.arg];
        const ValueId v = coords[t.dim];
        if (v >= t.size) return kOutOfRange;
        acc = weights_[t.offset + v];
        break;
      }
      case Op::kNot:
        acc = 1.0 - acc;
        break;
      case Op::kPush:
        stack[sp++] = acc;
        break;
      case Op::kAnd:
        acc = stack[--sp] * acc;
        break;
      case Op::kOr:
        acc = std::max(stack[--sp], acc);
        break;
      case Op::kJumpIfZero:
        if (acc == 0.0) ip = static_cast<size_t>(in.arg) - 1;
        break;
      case Op::kJumpIfOne:
        if (acc == 1.0) ip = static_cast<size_t>(in.arg) - 1;
        break;
    }
  }
  return acc;
}

void PredProgram::EvalBatch(const ValueId* const* cols, size_t n, double* out,
                            BatchScratch* scratch) const {
  // Lanes accumulate in place in `out`; the pending-fold stack gets one
  // n-wide row per depth level. Jumps are no-ops — see the header proof.
  scratch->stack.resize(static_cast<size_t>(max_depth_) * n);
  scratch->oor.assign(n, 0);
  double* stack = scratch->stack.data();
  uint8_t* oor = scratch->oor.data();
  size_t sp = 0;
  for (const Instr in : code_) {
    switch (in.op) {
      case Op::kConst: {
        const double v = in.arg != 0 ? 1.0 : 0.0;
        for (size_t i = 0; i < n; ++i) out[i] = v;
        break;
      }
      case Op::kLoadTable: {
        const Table& t = tables_[in.arg];
        const ValueId* col = cols[t.dim];
        const double* w = weights_.data() + t.offset;
        const uint32_t size = t.size;
        for (size_t i = 0; i < n; ++i) {
          const ValueId v = col[i];
          if (v >= size) {
            oor[i] = 1;
            out[i] = 0.0;
          } else {
            out[i] = w[v];
          }
        }
        break;
      }
      case Op::kNot:
        for (size_t i = 0; i < n; ++i) out[i] = 1.0 - out[i];
        break;
      case Op::kPush: {
        double* slot = stack + sp * n;
        for (size_t i = 0; i < n; ++i) slot[i] = out[i];
        ++sp;
        break;
      }
      case Op::kAnd: {
        const double* slot = stack + --sp * n;
        for (size_t i = 0; i < n; ++i) out[i] = slot[i] * out[i];
        break;
      }
      case Op::kOr: {
        const double* slot = stack + --sp * n;
        for (size_t i = 0; i < n; ++i) out[i] = std::max(slot[i], out[i]);
        break;
      }
      case Op::kJumpIfZero:
      case Op::kJumpIfOne:
        break;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (oor[i]) out[i] = kOutOfRange;
  }
}

size_t PredProgram::ApproxBytes() const {
  return sizeof(PredProgram) + code_.capacity() * sizeof(Instr) +
         tables_.capacity() * sizeof(Table) +
         weights_.capacity() * sizeof(double);
}

scan::AtomOracle SpecAtomOracle(const MultidimensionalObject& ctx,
                                int64_t now_day) {
  return [&ctx, now_day](const Atom& a, const Dimension& dim,
                         ValueId v) -> double {
    // EvalAtomOnCell reads only cell[a.dim]; every other slot is inert.
    std::vector<ValueId> cell(ctx.num_dimensions(), 0);
    cell[a.dim] = v;
    (void)dim;
    return EvalAtomOnCell(a, ctx, cell, now_day) ? 1.0 : 0.0;
  };
}

std::optional<RollupProgram> RollupProgram::Compile(
    const std::vector<std::shared_ptr<Dimension>>& dims,
    std::span<const CategoryId> want) {
  RollupProgram p;
  p.offsets_.reserve(dims.size());
  p.sizes_.reserve(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    const Dimension& dim = *dims[d];
    const size_t extent = dim.num_values();
    if (extent > PredProgram::kMaxTableValues) {
      FallbacksCounter().Increment();
      return std::nullopt;
    }
    p.offsets_.push_back(static_cast<uint32_t>(p.table_.size()));
    p.sizes_.push_back(static_cast<uint32_t>(extent));
    p.table_.reserve(p.table_.size() + extent);
    for (size_t v = 0; v < extent; ++v) {
      const auto vv = static_cast<ValueId>(v);
      ValueId entry = kNotBelow;
      if (dim.type().Leq(dim.value_category(vv), want[d])) {
        entry = dim.Rollup(vv, want[d]);
        // Same invariant the per-fact walk asserts: a value at or below the
        // requested category always has an ancestor there.
        DWRED_CHECK(entry != kInvalidValue);
      }
      p.table_.push_back(entry);
    }
  }
  CompilesCounter().Increment();
  return p;
}

size_t RollupProgram::ApproxBytes() const {
  return sizeof(RollupProgram) +
         (offsets_.capacity() + sizes_.capacity()) * sizeof(uint32_t) +
         table_.capacity() * sizeof(ValueId);
}

FoldProgram FoldProgram::Compile(std::span<const MeasureType> measures) {
  FoldProgram p;
  p.fns_.reserve(measures.size());
  for (const MeasureType& m : measures) p.fns_.push_back(m.agg);
  return p;
}

}  // namespace dwred::vm
