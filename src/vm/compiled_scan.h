#pragma once

// CompiledScan: a PredProgram bound to its per-row interpreter fallback,
// evaluating whole shards without touching the predicate AST
// (docs/COMPILATION.md). The three hot sites (per-subcube query evaluation,
// Reduce's cell-grouping scan, the schema-reduction selection scans) hold one
// of these per predicate and call Weigh*/ — behind the existing ScanSpec
// planning entry points, so pruning, sharding, and the byte-identical
// determinism contract are untouched.

#include <functional>
#include <memory>
#include <vector>

#include "scan/scan.h"
#include "storage/fact_table.h"
#include "vm/program.h"

namespace dwred::vm {

/// Interpreter evaluation of one direct cell — the per-row fallback when a
/// coordinate postdates the compiled tables (or no program compiled at all).
using RowEval = std::function<double(const ValueId*)>;

class CompiledScan {
 public:
  /// `prog` may be null (kill switch / compile rejection): every row then
  /// goes through `fallback`. The fallback must match the program's
  /// semantics exactly — bind EvalQueryPredOnCoords for selection weights or
  /// EvalPredOnCell for 0/1 spec predicates.
  CompiledScan(std::shared_ptr<const PredProgram> prog, RowEval fallback)
      : prog_(std::move(prog)), fallback_(std::move(fallback)) {}

  bool compiled() const { return prog_ != nullptr; }

  /// Weight of one direct cell.
  double Weigh(const ValueId* coords) const {
    if (prog_ != nullptr) {
      const double w = prog_->Eval(coords);
      if (w != PredProgram::kOutOfRange) return w;
      CountFallback();  // coordinate interned after compilation
    }
    return fallback_(coords);
  }

  /// Fills `weights` (indexed by logical row id, sized to `t`; rows outside
  /// the plan keep weight 0 — pruning guarantees they cannot match) by
  /// evaluating every planned row, shard-parallel on the global pool. With
  /// the columnar path enabled (storage::ColumnarEnabled) each shard runs
  /// PredProgram::EvalBatch chunk-at-a-time over the segment columns and
  /// late-materializes full cells only for out-of-range lanes; the kill
  /// switch falls back to the PR-8 row-at-a-time path. Deterministic: each
  /// shard writes a disjoint range, and both paths produce identical bits.
  void WeighTable(const FactTable& t, const scan::ScanPlan& plan,
                  std::vector<double>* weights) const;

  /// Fills `weights` (one slot per fact) over an MO's facts, shard-parallel.
  /// The columnar path transposes row-major fact chunks into column scratch
  /// and batch-evaluates them.
  void WeighMo(const MultidimensionalObject& mo,
               std::vector<double>* weights) const;

  /// Evaluates one column batch into out[0..b.rows()): EvalBatch across the
  /// lanes, then the per-row interpreter fallback for out-of-range lanes
  /// (or for every lane when no program compiled).
  void WeighBatch(const FactTable::BatchView& b, double* out,
                  PredProgram::BatchScratch* scratch) const;

 private:
  std::shared_ptr<const PredProgram> prog_;
  RowEval fallback_;
};

}  // namespace dwred::vm
