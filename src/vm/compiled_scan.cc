#include "vm/compiled_scan.h"

#include "storage/column.h"

namespace dwred::vm {

namespace {

/// Gathers lane `i`'s full cell from the batch columns.
inline void GatherCell(const FactTable::BatchView& b, size_t ndims, size_t i,
                       ValueId* cell) {
  for (size_t d = 0; d < ndims; ++d) cell[d] = b.dim_col(d)[i];
}

}  // namespace

void CompiledScan::WeighBatch(const FactTable::BatchView& b, double* out,
                              PredProgram::BatchScratch* scratch) const {
  const size_t n = b.rows();
  const size_t ndims = b.num_dims();
  std::vector<ValueId> cell(ndims);
  if (prog_ != nullptr) {
    prog_->EvalBatch(b.dim_cols(), n, out, scratch);
    for (size_t i = 0; i < n; ++i) {
      if (out[i] == PredProgram::kOutOfRange) {
        CountFallback();
        GatherCell(b, ndims, i, cell.data());
        out[i] = fallback_(cell.data());
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    GatherCell(b, ndims, i, cell.data());
    out[i] = fallback_(cell.data());
  }
}

void CompiledScan::WeighTable(const FactTable& t, const scan::ScanPlan& plan,
                              std::vector<double>* weights) const {
  weights->assign(t.num_rows(), 0.0);
  const size_t ndims = t.num_dims();
  if (storage::ColumnarEnabled()) {
    scan::Execute(plan, [&](size_t, size_t begin, size_t end) {
      PredProgram::BatchScratch scratch;
      std::vector<ValueId> cell(ndims);
      t.ForEachDimBatch(begin, end, [&](const FactTable::BatchView& b) {
        double* out = weights->data() + b.first_row();
        const size_t n = b.rows();
        if (prog_ != nullptr) {
          prog_->EvalBatch(b.dim_cols(), n, out, &scratch);
          for (size_t i = 0; i < n; ++i) {
            if (out[i] == PredProgram::kOutOfRange) {
              CountFallback();  // coordinate interned after compilation
              GatherCell(b, ndims, i, cell.data());
              out[i] = fallback_(cell.data());
            }
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            GatherCell(b, ndims, i, cell.data());
            out[i] = fallback_(cell.data());
          }
        }
      });
    });
    return;
  }
  scan::Execute(plan, [&](size_t, size_t begin, size_t end) {
    std::vector<ValueId> cell(ndims);
    t.ForEachRow(begin, end, [&](RowId r, const FactTable::RowRef& row) {
      for (size_t d = 0; d < ndims; ++d) cell[d] = row.coord(d);
      (*weights)[r] = Weigh(cell.data());
    });
  });
}

void CompiledScan::WeighMo(const MultidimensionalObject& mo,
                           std::vector<double>* weights) const {
  weights->assign(mo.num_facts(), 0.0);
  const size_t ndims = mo.num_dimensions();
  if (storage::ColumnarEnabled() && prog_ != nullptr && ndims > 0) {
    // The MO fact store is row-major; transpose chunks into column scratch
    // so the batch evaluator sees flat columns.
    constexpr size_t kChunk = FactTable::kBatchRows;
    scan::Execute(
        scan::PlanMoScan(mo.num_facts(), /*grain=*/512),
        [&](size_t, size_t begin, size_t end) {
          PredProgram::BatchScratch scratch;
          std::vector<ValueId> cols(ndims * kChunk);
          std::vector<const ValueId*> colp(ndims);
          for (size_t d = 0; d < ndims; ++d) colp[d] = cols.data() + d * kChunk;
          for (FactId f = begin; f < end; f += kChunk) {
            const size_t n = std::min<size_t>(kChunk, end - f);
            for (size_t i = 0; i < n; ++i) {
              const ValueId* row = mo.FactCoords(f + i).data();
              for (size_t d = 0; d < ndims; ++d) cols[d * kChunk + i] = row[d];
            }
            double* out = weights->data() + f;
            prog_->EvalBatch(colp.data(), n, out, &scratch);
            for (size_t i = 0; i < n; ++i) {
              if (out[i] == PredProgram::kOutOfRange) {
                CountFallback();
                out[i] = fallback_(mo.FactCoords(f + i).data());
              }
            }
          }
        });
    return;
  }
  scan::Execute(scan::PlanMoScan(mo.num_facts(), /*grain=*/512),
                [&](size_t, size_t begin, size_t end) {
                  for (FactId f = begin; f < end; ++f) {
                    (*weights)[f] = Weigh(mo.FactCoords(f).data());
                  }
                });
}

}  // namespace dwred::vm
