#include "vm/compiled_scan.h"

namespace dwred::vm {

void CompiledScan::WeighTable(const FactTable& t, const scan::ScanPlan& plan,
                              std::vector<double>* weights) const {
  weights->assign(t.num_rows(), 0.0);
  const size_t ndims = t.num_dims();
  scan::Execute(plan, [&](size_t, size_t begin, size_t end) {
    std::vector<ValueId> cell(ndims);
    t.ForEachRow(begin, end, [&](RowId r, const FactTable::RowRef& row) {
      for (size_t d = 0; d < ndims; ++d) cell[d] = row.coord(d);
      (*weights)[r] = Weigh(cell.data());
    });
  });
}

void CompiledScan::WeighMo(const MultidimensionalObject& mo,
                           std::vector<double>* weights) const {
  weights->assign(mo.num_facts(), 0.0);
  scan::Execute(scan::PlanMoScan(mo.num_facts(), /*grain=*/512),
                [&](size_t, size_t begin, size_t end) {
                  for (FactId f = begin; f < end; ++f) {
                    (*weights)[f] = Weigh(mo.FactCoords(f).data());
                  }
                });
}

}  // namespace dwred::vm
