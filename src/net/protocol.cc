#include "net/protocol.h"

#include "io/atomic_file.h"  // Crc32
#include "io/wire.h"

namespace dwred::net {

const char* CommandName(Command c) {
  switch (c) {
    case Command::kPing: return "ping";
    case Command::kQuery: return "query";
    case Command::kInsert: return "insert";
    case Command::kSynchronize: return "synchronize";
    case Command::kSpecChange: return "spec_change";
    case Command::kStats: return "stats";
    case Command::kCacheCtl: return "cache_ctl";
    case Command::kSnapshotCrc: return "snapshot_crc";
    case Command::kShutdown: return "shutdown";
  }
  return "unknown";
}

void AppendFrame(std::string* out, std::string_view payload) {
  wire::PutU32(out, static_cast<uint32_t>(payload.size()));
  wire::PutU32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

std::string EncodeRequest(const Request& req) {
  std::string p;
  wire::PutU8(&p, static_cast<uint8_t>(req.cmd));
  wire::PutU32(&p, req.deadline_ms);
  wire::PutU64(&p, req.max_rows);
  wire::PutI64(&p, req.now_day);
  wire::PutU8(&p, req.flags);
  wire::PutStr(&p, req.a);
  wire::PutStr(&p, req.b);
  return p;
}

Result<Request> DecodeRequest(std::string_view payload) {
  wire::Cursor cur(payload, "request");
  Request req;
  uint8_t cmd = 0;
  DWRED_RETURN_IF_ERROR(cur.U8(&cmd));
  if (cmd < static_cast<uint8_t>(Command::kPing) ||
      cmd > static_cast<uint8_t>(Command::kShutdown)) {
    return Status::ParseError("request: unknown command " +
                              std::to_string(cmd));
  }
  req.cmd = static_cast<Command>(cmd);
  DWRED_RETURN_IF_ERROR(cur.U32(&req.deadline_ms));
  DWRED_RETURN_IF_ERROR(cur.U64(&req.max_rows));
  DWRED_RETURN_IF_ERROR(cur.I64(&req.now_day));
  DWRED_RETURN_IF_ERROR(cur.U8(&req.flags));
  DWRED_RETURN_IF_ERROR(cur.Str(&req.a));
  DWRED_RETURN_IF_ERROR(cur.Str(&req.b));
  if (!cur.AtEnd()) {
    return Status::ParseError("request: trailing bytes after payload");
  }
  return req;
}

std::string EncodeResponse(const Response& resp) {
  std::string p;
  wire::PutU8(&p, static_cast<uint8_t>(resp.code));
  wire::PutStr(&p, resp.message);
  wire::PutStr(&p, resp.body);
  return p;
}

Result<Response> DecodeResponse(std::string_view payload) {
  wire::Cursor cur(payload, "response");
  Response resp;
  uint8_t code = 0;
  DWRED_RETURN_IF_ERROR(cur.U8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::ParseError("response: unknown status code " +
                              std::to_string(code));
  }
  resp.code = static_cast<StatusCode>(code);
  DWRED_RETURN_IF_ERROR(cur.Str(&resp.message));
  DWRED_RETURN_IF_ERROR(cur.Str(&resp.body));
  if (!cur.AtEnd()) {
    return Status::ParseError("response: trailing bytes after payload");
  }
  return resp;
}

FrameParse ExtractFrame(std::string_view buf, std::string* payload,
                        size_t* consumed, std::string* error) {
  if (buf.size() < kFrameHeaderBytes) return FrameParse::kNeedMore;
  uint32_t len = 0, crc = 0;
  wire::Cursor cur(buf, "frame");
  (void)cur.U32(&len);
  (void)cur.U32(&crc);
  if (len > kMaxFrameBytes) {
    // An oversized prefix is indistinguishable from desynchronization; do
    // not wait for 4 GiB that will never arrive.
    *error = "frame length " + std::to_string(len) + " exceeds cap " +
             std::to_string(kMaxFrameBytes);
    return FrameParse::kBad;
  }
  if (buf.size() < kFrameHeaderBytes + len) return FrameParse::kNeedMore;
  std::string_view body = buf.substr(kFrameHeaderBytes, len);
  uint32_t actual = Crc32(body);
  if (actual != crc) {
    *error = "frame CRC mismatch (stored " + std::to_string(crc) +
             ", computed " + std::to_string(actual) + ")";
    return FrameParse::kBad;
  }
  payload->assign(body.data(), body.size());
  *consumed = kFrameHeaderBytes + len;
  return FrameParse::kFrame;
}

}  // namespace dwred::net
