#pragma once

// The dwredd wire protocol (docs/SERVER.md): a small length-prefixed,
// CRC-framed command protocol over TCP, reusing the journal's framing
// discipline (io/journal.h):
//
//   frame := [u32 payload_len][u32 crc32(payload)][payload]
//
// little-endian, no file/stream header. A frame whose length prefix exceeds
// kMaxFrameBytes or whose CRC does not match poisons the stream (the reader
// cannot find the next frame boundary), so the peer answers with one error
// response when it still can and closes the connection. A *short* frame —
// fewer bytes available than the prefix promises — is not an error, just an
// incomplete read: the session loop keeps the bytes buffered and reads on.
//
// Request payload (wire.h codec):
//
//   u8  command        (Command)
//   u32 deadline_ms    0 = none; server maps to runtime::Deadline
//   u64 max_rows       0 = none; server maps to OpContext row budget
//   i64 now_day        resolved NOW day for query/sync/spec-change
//   u8  flags          per-command bits (kQuery*, kStats*)
//   str a, str b       per-command texts (predicate, granularity, CSV, spec)
//
// Response payload:
//
//   u8  status_code    (StatusCode; kOk on success)
//   str message        Status message when status_code != kOk
//   str body           command output (facts text, metrics, EXPLAIN, ...)
//
// Keeping the surface operator-shaped — query / insert / synchronize /
// spec-change, the paper's own verbs — rather than ad-hoc RPCs is deliberate;
// every command maps 1:1 onto an existing SubcubeManager entry point.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dwred::net {

/// Hard cap on one frame's payload (matches the journal's kMaxRecordBytes
/// spirit; a length prefix above this is stream poison, not an allocation).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// Bytes of framing overhead per frame: the length and CRC prefixes.
inline constexpr size_t kFrameHeaderBytes = 8;

enum class Command : uint8_t {
  kPing = 1,         ///< liveness probe; body "pong"
  kQuery = 2,        ///< a = predicate text ("" = none), b = granularity list
  kInsert = 3,       ///< a = fact CSV (io/warehouse_io.h layout)
  kSynchronize = 4,  ///< Section 7.2 pass at now_day
  kSpecChange = 5,   ///< a = specification text (one action per line)
  kStats = 6,        ///< metrics registry + cache stats; kStatsJson for JSON
  kCacheCtl = 7,     ///< a = "" (stats line) | "clear"
  kSnapshotCrc = 8,  ///< canonical warehouse CRC (differential testing)
  kShutdown = 9,     ///< ask the daemon to stop accepting and exit
};

/// Human-readable command name ("query", "insert", ...) for metrics and logs.
const char* CommandName(Command c);

// kQuery flags.
inline constexpr uint8_t kQuerySynchronized = 1;  ///< assume_synchronized
inline constexpr uint8_t kQueryParallel = 2;      ///< per-subcube fan-out
inline constexpr uint8_t kQueryExplain = 4;       ///< append EXPLAIN profile
// kStats flags.
inline constexpr uint8_t kStatsJson = 1;

struct Request {
  Command cmd = Command::kPing;
  uint32_t deadline_ms = 0;
  uint64_t max_rows = 0;
  int64_t now_day = 0;
  uint8_t flags = 0;
  std::string a;
  std::string b;
};

struct Response {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string body;
};

/// Appends one complete frame (header + payload) to `out`. Writers batch
/// several frames into one buffer before the syscall (pipelining).
void AppendFrame(std::string* out, std::string_view payload);

std::string EncodeRequest(const Request& req);
Result<Request> DecodeRequest(std::string_view payload);
std::string EncodeResponse(const Response& resp);
Result<Response> DecodeResponse(std::string_view payload);

/// Incremental frame extraction over a connection's read buffer.
enum class FrameParse {
  kNeedMore,  ///< buffer holds a frame prefix; read more bytes
  kFrame,     ///< one payload extracted; `consumed` bytes may be dropped
  kBad,       ///< oversized length or CRC mismatch — the stream is poisoned
};

/// Tries to extract the first complete frame from `buf`. On kFrame the
/// payload is copied into `*payload` and `*consumed` is set to the frame's
/// total size. On kBad `*error` names the defect (the caller should answer
/// once if it can and close). On kNeedMore nothing is written.
FrameParse ExtractFrame(std::string_view buf, std::string* payload,
                        size_t* consumed, std::string* error);

}  // namespace dwred::net
