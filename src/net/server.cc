#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "common/env.h"
#include "io/atomic_file.h"  // Crc32
#include "io/warehouse_io.h"
#include "net/client.h"  // IgnoreSigpipe
#include "obs/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "reduce/dynamics.h"
#include "runtime/cancel.h"
#include "spec/parser.h"

namespace dwred::net {

namespace {

struct NetMetrics {
  obs::Counter& connections_total;
  obs::Gauge& connections_open;
  obs::Counter& rejected;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
  obs::Counter& frames;
  obs::Counter& protocol_errors;
  obs::Counter& disconnects;
  obs::Counter& aborts;

  static NetMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static NetMetrics m{
        reg.GetCounter("dwred_net_connections_total",
                       "connections accepted by dwredd"),
        reg.GetGauge("dwred_net_connections_open",
                     "connections currently open"),
        reg.GetCounter("dwred_net_connections_rejected",
                       "connections shed at the connection cap"),
        reg.GetCounter("dwred_net_bytes_read", "payload+frame bytes received"),
        reg.GetCounter("dwred_net_bytes_written", "payload+frame bytes sent"),
        reg.GetCounter("dwred_net_frames", "request frames processed"),
        reg.GetCounter("dwred_net_protocol_errors",
                       "malformed frames (bad CRC, oversized length, "
                       "undecodable request)"),
        reg.GetCounter("dwred_net_disconnects",
                       "sessions ended by the peer (EOF, reset, EPIPE)"),
        reg.GetCounter("dwred_net_aborts",
                       "commands aborted at a cancel.net.* poll site"),
    };
    return m;
  }
};

/// Per-command request counter, registered on first use.
obs::Counter& CommandCounter(Command c) {
  auto& reg = obs::MetricsRegistry::Global();
  switch (c) {
#define DWRED_NET_CMD_COUNTER(cmd, name)                               \
  case Command::cmd: {                                                 \
    static obs::Counter& ctr =                                         \
        reg.GetCounter("dwred_net_cmd_" name, name " requests served"); \
    return ctr;                                                        \
  }
    DWRED_NET_CMD_COUNTER(kPing, "ping")
    DWRED_NET_CMD_COUNTER(kQuery, "query")
    DWRED_NET_CMD_COUNTER(kInsert, "insert")
    DWRED_NET_CMD_COUNTER(kSynchronize, "synchronize")
    DWRED_NET_CMD_COUNTER(kSpecChange, "spec_change")
    DWRED_NET_CMD_COUNTER(kStats, "stats")
    DWRED_NET_CMD_COUNTER(kCacheCtl, "cache_ctl")
    DWRED_NET_CMD_COUNTER(kSnapshotCrc, "snapshot_crc")
    DWRED_NET_CMD_COUNTER(kShutdown, "shutdown")
#undef DWRED_NET_CMD_COUNTER
  }
  static obs::Counter& unknown =
      reg.GetCounter("dwred_net_cmd_unknown", "unknown requests");
  return unknown;
}

Status WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Response FromStatus(const Status& st) {
  Response r;
  r.code = st.code();
  r.message = st.message();
  return r;
}

}  // namespace

std::string RenderResult(const MultidimensionalObject& mo) {
  std::ostringstream out;
  out << mo.num_facts() << " cells\n";
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    out << mo.FormatFact(f) << "\n";
  }
  return out.str();
}

uint32_t WarehouseCrc(const SubcubeManager& mgr) {
  std::shared_lock<std::shared_mutex> lock(
      mgr.warehouse_cache().snapshot_mutex());
  uint32_t crc = 0;
  for (size_t i = 0; i < mgr.num_subcubes(); ++i) {
    const Subcube& cube = mgr.subcube(i);
    std::ostringstream out;
    out << cube.name << "|";
    for (CategoryId c : cube.granularity) out << c << ",";
    out << "|" << cube.table.num_rows() << "\n";
    const size_t nd = cube.table.num_dims();
    const size_t nm = cube.table.num_measures();
    cube.table.ForEachRow(
        0, cube.table.num_rows(), [&](RowId, const FactTable::RowRef& row) {
          for (size_t d = 0; d < nd; ++d) out << row.coord(d) << ",";
          out << "|";
          for (size_t m = 0; m < nm; ++m) out << row.measure(m) << ",";
          out << "\n";
        });
    crc = Crc32(out.str(), crc);
  }
  return crc;
}

Server::Server(ServerConfig config, SubcubeManager* mgr)
    : config_(std::move(config)), mgr_(mgr) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  IgnoreSigpipe();
  max_connections_ =
      config_.max_connections > 0
          ? config_.max_connections
          : static_cast<int>(EnvInt64("DWRED_NET_MAX_CONNECTIONS", 64, 1,
                                      4096, EnvRangePolicy::kClamp));
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    CloseListener();
    return Status::InvalidArgument("not an IPv4 address: '" + config_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int saved = errno;
    CloseListener();
    return Status::Unavailable("bind " + config_.host + ":" +
                               std::to_string(config_.port) + ": " +
                               std::strerror(saved));
  }
  if (::listen(listen_fd_, 128) != 0) {
    int saved = errno;
    CloseListener();
    return Status::Unavailable(std::string("listen: ") +
                               std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    int saved = errno;
    CloseListener();
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(saved));
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::CloseListener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::Stop() {
  // One teardown at a time; a second caller blocks until the first finishes
  // and then finds nothing left to do (idempotent).
  static std::mutex stop_mu;
  std::lock_guard<std::mutex> stop_lock(stop_mu);
  if (!stopping_.exchange(true)) {
    // Closing the listener makes the blocking accept fail and the accept
    // thread exit.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    CloseListener();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Kick every live session off its blocking read, then join.
  std::vector<std::unique_ptr<SessionSlot>> taken;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) {
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
    }
    taken.swap(sessions_);
  }
  for (auto& s : taken) {
    if (s->thread.joinable()) s->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    shutdown_cv_.notify_all();
  }
}

void Server::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(sessions_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_acquire);
  });
}

void Server::AcceptLoop() {
  NetMetrics& m = NetMetrics::Get();
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard<std::mutex> lock(sessions_mu_);
    // Reap sessions that already finished so a long-lived daemon's slot
    // vector tracks live connections, not connections-ever.
    for (size_t i = 0; i < sessions_.size();) {
      if (sessions_[i]->fd < 0) {
        if (sessions_[i]->thread.joinable()) sessions_[i]->thread.join();
        sessions_.erase(sessions_.begin() + i);
      } else {
        ++i;
      }
    }
    if (open_sessions_ >= max_connections_) {
      // Shed with one honest response instead of a silent RST: the client's
      // first Recv() sees ResourceExhausted.
      Response shed;
      shed.code = StatusCode::kResourceExhausted;
      shed.message = "connection cap reached (" +
                     std::to_string(max_connections_) + " sessions open)";
      std::string out;
      AppendFrame(&out, EncodeResponse(shed));
      (void)WriteAll(fd, out);
      ::close(fd);
      m.rejected.Increment();
      continue;
    }
    auto slot = std::make_unique<SessionSlot>();
    slot->fd = fd;
    SessionSlot* raw = slot.get();
    ++open_sessions_;
    m.connections_total.Increment();
    m.connections_open.Set(open_sessions_);
    raw->thread = std::thread([this, raw, fd] {
      Session(fd);
      // The fd is closed and the slot retired under sessions_mu_ so Stop()
      // never races a shutdown() against a concurrent close() (fd reuse).
      std::lock_guard<std::mutex> lock(sessions_mu_);
      ::close(fd);
      raw->fd = -1;
      --open_sessions_;
      NetMetrics::Get().connections_open.Set(open_sessions_);
    });
    sessions_.push_back(std::move(slot));
  }
}

void Server::Session(int fd) {
  NetMetrics& m = NetMetrics::Get();
  std::string inbuf, outbuf;
  bool poisoned = false;
  bool shutdown_cmd = false;
  for (;;) {
    char chunk[65536];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      m.disconnects.Increment();
      break;
    }
    if (n == 0) break;  // clean EOF
    m.bytes_read.Increment(static_cast<uint64_t>(n));
    inbuf.append(chunk, static_cast<size_t>(n));

    // Drain every complete frame before the next read so pipelined bursts
    // are answered in one batched write.
    outbuf.clear();
    std::string payload, error;
    size_t consumed = 0;
    while (!poisoned) {
      FrameParse fp = ExtractFrame(inbuf, &payload, &consumed, &error);
      if (fp == FrameParse::kNeedMore) break;
      if (fp == FrameParse::kBad) {
        m.protocol_errors.Increment();
        Response bad;
        bad.code = StatusCode::kParseError;
        bad.message = error;
        AppendFrame(&outbuf, EncodeResponse(bad));
        poisoned = true;  // frame boundaries are lost; answer once and close
        break;
      }
      inbuf.erase(0, consumed);
      m.frames.Increment();

      auto req = DecodeRequest(payload);
      Response resp;
      if (!req.ok()) {
        m.protocol_errors.Increment();
        resp = FromStatus(req.status());
      } else {
        resp = DispatchImpl(req.value(), &shutdown_cmd);
      }
      AppendFrame(&outbuf, EncodeResponse(resp));
      // Answer the shutdown, then close: frames pipelined behind it die with
      // the session, and a follow-up command on this connection is the
      // documented short read (tools/run_server_kill.sh scenario 2).
      if (shutdown_cmd) break;
    }
    if (!outbuf.empty()) {
      Status wr = WriteAll(fd, outbuf);
      if (!wr.ok()) {
        // EPIPE/ECONNRESET after the peer vanished: drop the session, never
        // the process (SIGPIPE is ignored — net/client.h).
        m.disconnects.Increment();
        break;
      }
      m.bytes_written.Increment(outbuf.size());
    }
    if (shutdown_cmd) {
      // Signal only after the ack is on the wire: the daemon's Stop() runs
      // shutdown(2) on every live session fd, and signaling first lets it
      // race the response write the requesting client is still owed.
      SignalShutdown();
      break;
    }
    if (poisoned) break;
  }
  // The caller (the session thread's lambda) closes the fd and retires the
  // slot under sessions_mu_.
}

Response Server::Dispatch(const Request& req) {
  bool shutdown_cmd = false;
  Response resp = DispatchImpl(req, &shutdown_cmd);
  if (shutdown_cmd) SignalShutdown();
  return resp;
}

void Server::SignalShutdown() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  shutdown_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
}

Response Server::DispatchImpl(const Request& req, bool* shutdown_cmd) {
  NetMetrics& m = NetMetrics::Get();
  CommandCounter(req.cmd).Increment();

  // Every command runs under a fresh operation context: the request's
  // deadline and row budget, plus a cancellable token so an injected or
  // propagated cancel stops engine shards cooperatively.
  runtime::OpContext ctx;
  ctx.token = runtime::CancelToken::Create();
  if (req.deadline_ms > 0) {
    ctx.deadline = runtime::Deadline::AfterMillis(req.deadline_ms);
  }
  if (req.max_rows > 0) {
    ctx.SetMaxRows(static_cast<int64_t>(req.max_rows));
  }
  runtime::ScopedOpContext scope(ctx);

  const auto start = std::chrono::steady_clock::now();
  Response resp;
  // The three net poll sites all sit before any warehouse byte moves, so an
  // abort at any of them leaves the epoch unbumped and the snapshot
  // byte-identical (tests/server_test.cc sweeps them).
  Status poll = runtime::PollCancel("cancel.net.read");
  if (poll.ok()) poll = runtime::PollCancel("cancel.net.dispatch");
  if (!poll.ok()) {
    m.aborts.Increment();
    resp = FromStatus(poll);
  } else {
    switch (req.cmd) {
      case Command::kPing:
        resp.body = "pong";
        break;
      case Command::kQuery:
        resp = DoQuery(req);
        break;
      case Command::kInsert:
        resp = DoInsert(req);
        break;
      case Command::kSynchronize:
        resp = DoSynchronize(req);
        break;
      case Command::kSpecChange:
        resp = DoSpecChange(req);
        break;
      case Command::kStats:
        resp = DoStats(req);
        break;
      case Command::kCacheCtl:
        resp = DoCacheCtl(req);
        break;
      case Command::kSnapshotCrc:
        resp = DoSnapshotCrc();
        break;
      case Command::kShutdown:
        *shutdown_cmd = true;
        resp.body = "shutting down";
        break;
    }
    Status respond = runtime::PollCancel("cancel.net.respond");
    if (!respond.ok()) {
      m.aborts.Increment();
      resp = FromStatus(respond);
    }
  }

  const int64_t wall_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  const std::string op = std::string("net.") + CommandName(req.cmd);
  obs::OpLatencyHistogram(op).Record(static_cast<double>(wall_us) * 1e-6);
  if (obs::ProfilingEnabled() &&
      obs::FlightRecorder::Global().WouldRecord(wall_us)) {
    obs::OpProfile profile;
    profile.op = op;
    profile.epoch = mgr_->epoch();
    profile.now_day = req.now_day;
    profile.outcome = runtime::OutcomeLabel(resp.code);
    profile.total_us = wall_us;
    profile.AddCounter("response_bytes",
                       static_cast<int64_t>(resp.body.size()));
    obs::FlightRecorder::Global().Record(profile);
  }
  return resp;
}

Response Server::DoQuery(const Request& req) {
  // Parsing resolves names against the facts-free context MO — read-only
  // (the parser never interns values), so concurrent sessions parse freely.
  std::shared_ptr<PredExpr> pred;
  if (!req.a.empty()) {
    auto p = ParsePredicate(mgr_->context(), req.a);
    if (!p.ok()) return FromStatus(p.status());
    pred = p.take();
  }
  std::vector<CategoryId> gran;
  bool has_gran = false;
  if (!req.b.empty()) {
    auto g = ParseGranularityList(mgr_->context(), req.b);
    if (!g.ok()) return FromStatus(g.status());
    gran = g.take();
    has_gran = true;
  }
  const bool explain = (req.flags & kQueryExplain) != 0;
  obs::OpProfile profile;
  auto r = mgr_->Query(pred.get(), has_gran ? &gran : nullptr, req.now_day,
                       (req.flags & kQuerySynchronized) != 0,
                       (req.flags & kQueryParallel) != 0,
                       /*pinned_epoch=*/nullptr, explain ? &profile : nullptr);
  if (!r.ok()) return FromStatus(r.status());
  Response resp;
  resp.body = RenderResult(r.value());
  if (explain) {
    resp.body += profile.op.empty()
                     ? "explain: profiling disabled (DWRED_PROFILE_DISABLED)\n"
                     : profile.Render();
  }
  return resp;
}

Response Server::DoInsert(const Request& req) {
  std::lock_guard<std::mutex> writer(write_mu_);
  const MultidimensionalObject& ctx = mgr_->context();
  MultidimensionalObject batch(ctx.fact_type(), ctx.dimensions(),
                               ctx.measure_types());
  {
    // CSV decoding interns unknown time values into the *shared* dimensions;
    // that mutation must not race epoch-pinned readers, so it runs under the
    // exclusive snapshot lock (released before InsertBottomFacts, which
    // re-acquires it — the lock is not recursive). Values interned here are
    // factless until the insert lands; a reader between the two critical
    // sections sees extra interned values but identical facts and bytes.
    std::unique_lock<std::shared_mutex> lock(
        mgr_->warehouse_cache().snapshot_mutex());
    Status st = ReadFactCsv(&batch, req.a);
    if (!st.ok()) return FromStatus(st);
  }
  Status st = mgr_->InsertBottomFacts(batch);
  if (!st.ok()) return FromStatus(st);
  Response resp;
  resp.body = "inserted " + std::to_string(batch.num_facts()) +
              " facts epoch=" + std::to_string(mgr_->epoch());
  return resp;
}

Response Server::DoSynchronize(const Request& req) {
  std::lock_guard<std::mutex> writer(write_mu_);
  auto r = mgr_->Synchronize(req.now_day);
  if (!r.ok()) return FromStatus(r.status());
  Response resp;
  resp.body = "synchronized: " + std::to_string(r.value()) +
              " rows migrated epoch=" + std::to_string(mgr_->epoch());
  return resp;
}

Response Server::DoSpecChange(const Request& req) {
  std::lock_guard<std::mutex> writer(write_mu_);
  auto actions = ReadSpecificationText(mgr_->context(), req.a);
  if (!actions.ok()) return FromStatus(actions.status());
  // Re-validate the full set (Growing + NonCrossing) before touching the
  // layout — ChangeSpecification trusts a validated specification.
  auto spec =
      InsertActions(mgr_->context(), ReductionSpecification{}, actions.take());
  if (!spec.ok()) return FromStatus(spec.status());
  const size_t n_actions = spec.value().size();
  Status st = mgr_->ChangeSpecification(spec.take(), req.now_day);
  if (!st.ok()) return FromStatus(st);
  Response resp;
  resp.body = "specification installed: " + std::to_string(n_actions) +
              " actions, " + std::to_string(mgr_->num_subcubes()) +
              " subcubes epoch=" + std::to_string(mgr_->epoch()) + "\n" +
              mgr_->DescribeLayout();
  return resp;
}

Response Server::DoStats(const Request& req) {
  Response resp;
  resp.body = (req.flags & kStatsJson) != 0
                  ? obs::MetricsRegistry::Global().RenderJson()
                  : obs::MetricsRegistry::Global().RenderText();
  return resp;
}

Response Server::DoCacheCtl(const Request& req) {
  cache::WarehouseCache& wc = mgr_->warehouse_cache();
  Response resp;
  if (req.a == "clear") {
    std::lock_guard<std::mutex> writer(write_mu_);
    wc.Clear();
    resp.body = "cache cleared";
    return resp;
  }
  if (!req.a.empty()) {
    return FromStatus(
        Status::InvalidArgument("cache_ctl: expected \"\" or \"clear\", got '" +
                                req.a + "'"));
  }
  cache::WarehouseCache::Stats st = wc.GetStats();
  std::ostringstream out;
  out << "cache " << (cache::Enabled() ? "enabled" : "disabled")
      << ": epoch=" << st.epoch << " query_entries=" << st.query_entries
      << " scanspec_entries=" << st.scanspec_entries
      << " program_entries=" << st.program_entries << " bytes=" << st.bytes
      << " max_entries=" << st.max_entries << " max_bytes=" << st.max_bytes;
  resp.body = out.str();
  return resp;
}

Response Server::DoSnapshotCrc() {
  size_t rows = 0;
  for (size_t i = 0; i < mgr_->num_subcubes(); ++i) {
    rows += mgr_->subcube(i).table.num_rows();
  }
  Response resp;
  resp.body = "crc=" + std::to_string(WarehouseCrc(*mgr_)) +
              " rows=" + std::to_string(rows) +
              " epoch=" + std::to_string(mgr_->epoch());
  return resp;
}

}  // namespace dwred::net
