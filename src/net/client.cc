#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/strings.h"

namespace dwred::net {

void IgnoreSigpipe() {
  // A write to a peer that already closed must surface as EPIPE (mapped to
  // Status::Unavailable below), not kill the process. Once is enough.
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

Result<HostPort> ParseHostPort(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument("expected host:port, got '" + spec + "'");
  }
  int64_t port = 0;
  if (!ParseInt64(spec.substr(colon + 1), &port) || port < 1 || port > 65535) {
    return Status::InvalidArgument("invalid port in '" + spec + "'");
  }
  HostPort hp;
  hp.host = spec.substr(0, colon);
  hp.port = static_cast<uint16_t>(port);
  return hp;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               int64_t recv_timeout_ms) {
  IgnoreSigpipe();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(saved));
  }
  // Small frames dominate the warm-query path; never wait for Nagle.
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return Client(fd);
}

namespace {

/// Writes the whole buffer, retrying short writes and EINTR.
Status WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status Client::Send(const Request& req) { return SendPipelined(&req, 1); }

Status Client::SendPipelined(const Request* reqs, size_t n) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    AppendFrame(&out, EncodeRequest(reqs[i]));
  }
  Status st = WriteAll(fd_, out);
  if (!st.ok()) Close();
  return st;
}

Result<std::string> Client::ReadFrame() {
  std::string payload, error;
  size_t consumed = 0;
  for (;;) {
    switch (ExtractFrame(buf_, &payload, &consumed, &error)) {
      case FrameParse::kFrame:
        buf_.erase(0, consumed);
        return payload;
      case FrameParse::kBad:
        Close();
        return Status::Unavailable("protocol error from server: " + error);
      case FrameParse::kNeedMore:
        break;
    }
    char chunk[16384];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      Close();
      if (saved == EAGAIN || saved == EWOULDBLOCK) {
        return Status::Unavailable("read timed out waiting for a response");
      }
      return Status::Unavailable(std::string("recv: ") + std::strerror(saved));
    }
    if (n == 0) {
      // The documented short-read contract: a disconnect mid-response names
      // the bytes that did arrive so supervisors can tell "server never
      // answered" from "answer torn mid-frame".
      size_t got = buf_.size();
      Close();
      return Status::Unavailable(
          "server closed the connection mid-response (short read: " +
          std::to_string(got) + " buffered bytes, no complete frame)");
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<Response> Client::Recv() {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  DWRED_ASSIGN_OR_RETURN(std::string payload, ReadFrame());
  auto resp = DecodeResponse(payload);
  if (!resp.ok()) {
    Close();
    return Status::Unavailable("malformed response: " +
                               resp.status().message());
  }
  return resp;
}

Result<Response> Client::Call(const Request& req) {
  DWRED_RETURN_IF_ERROR(Send(req));
  return Recv();
}

}  // namespace dwred::net
