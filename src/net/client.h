#pragma once

// Blocking client for the dwredd wire protocol (net/protocol.h), shared by
// dwredctl --connect, dwred_loadgen, the server tests, and the QPS bench.
//
// Transport failures — connect refusal, mid-stream server disconnect, short
// reads, EPIPE after the peer vanished — surface as Status::Unavailable with
// the syscall detail, never as a hang or a silent success (docs/SERVER.md,
// exit-code contract). SIGPIPE is ignored process-wide on first use so a
// write to a dead peer returns EPIPE instead of killing the process; dwredd
// installs the same handler on boot.

#include <cstdint>
#include <string>

#include "net/protocol.h"

namespace dwred::net {

/// Ignores SIGPIPE for the process (idempotent). Called by Client::Connect
/// and dwredd's main; safe to call from tests.
void IgnoreSigpipe();

/// "host:port" -> parts. The port must be a valid TCP port (1..65535).
struct HostPort {
  std::string host;
  uint16_t port = 0;
};
Result<HostPort> ParseHostPort(const std::string& spec);

/// One blocking connection. Movable, not copyable.
class Client {
 public:
  Client() = default;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Connects over IPv4. `recv_timeout_ms` bounds every read so a wedged
  /// server surfaces as Unavailable, not a hang (0 = no timeout).
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                int64_t recv_timeout_ms = 60000);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request frame. Short writes are retried to completion;
  /// EPIPE/ECONNRESET -> Unavailable.
  Status Send(const Request& req);

  /// Sends `n` request frames in one buffered write (pipelining).
  Status SendPipelined(const Request* reqs, size_t n);

  /// Receives one response frame. EOF or a torn frame mid-response is a
  /// short read: Unavailable naming how many bytes arrived.
  Result<Response> Recv();

  /// Send + Recv.
  Result<Response> Call(const Request& req);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Reads until `buf_` holds one complete frame; extracts it.
  Result<std::string> ReadFrame();

  int fd_ = -1;
  std::string buf_;  ///< bytes received past the last extracted frame
};

}  // namespace dwred::net
