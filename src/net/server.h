#pragma once

// dwredd's serving core (docs/SERVER.md): a TCP listener fronting one
// SubcubeManager with the net/protocol.h command protocol.
//
// Threading model: one accept thread plus one dedicated thread per
// connection. Sessions do NOT run on the exec::ThreadPool — the pool is a
// barrier-style ParallelFor engine with no task-submit API, so parking a
// long-lived session on it would starve the engine passes that need it;
// instead the CPU-heavy work inside each command (per-subcube query fan-out,
// sharded synchronize) rides the pool exactly as it does embedded.
//
// Concurrency discipline: read commands (query, stats, snapshot-crc) take
// the warehouse snapshot lock shared inside the engine — epoch-pinned reads,
// concurrent across sessions. Mutating commands (insert, synchronize,
// spec-change, cache-clear) additionally serialize through `write_mu_` so
// two sessions cannot interleave a CSV parse (which interns new dimension
// values) with another writer's pass; the engine's exclusive snapshot lock
// then fences them against readers as embedded.
//
// Every command runs under a fresh runtime::OpContext carrying the request's
// deadline and row budget plus a cancellable token, with poll sites
// cancel.net.{read,dispatch,respond} — all in read-only phases, so an abort
// at any of them leaves the warehouse byte-identical (epoch unbumped,
// caches untouched), the PR-7 contract extended over the wire.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "subcube/manager.h"

namespace dwred::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral (bound port via Server::port())
  /// Connection cap; accepts past it are answered with one ResourceExhausted
  /// response and closed. <= 0 reads DWRED_NET_MAX_CONNECTIONS (default 64).
  int max_connections = 0;
};

class Server {
 public:
  /// `mgr` must outlive the server.
  Server(ServerConfig config, SubcubeManager* mgr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// The bound port (after Start; meaningful with config.port == 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, shuts down every live session, joins all threads.
  /// Idempotent.
  void Stop();

  /// Blocks until a kShutdown command arrives (daemon main loop).
  void WaitForShutdown();

  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Executes one already-decoded request against the warehouse, exactly as
  /// a session would (minus the transport). Exposed for tests and for
  /// in-process callers that want the wire semantics without a socket.
  /// A kShutdown request signals shutdown before returning.
  Response Dispatch(const Request& req);

 private:
  void AcceptLoop();
  void Session(int fd);
  void CloseListener();

  /// Dispatch minus the shutdown side effect: a kShutdown request only sets
  /// *shutdown_cmd. Sessions use this so the signal can be deferred until the
  /// response is on the wire — signaling first lets the daemon's Stop() tear
  /// the session's fd down while the ack is still unwritten, and the
  /// requesting client sees a short read instead of its answer.
  Response DispatchImpl(const Request& req, bool* shutdown_cmd);

  /// Wakes WaitForShutdown (store + notify under the waiter's mutex so the
  /// waiter cannot check the predicate and block between the two).
  void SignalShutdown();

  Response DoQuery(const Request& req);
  Response DoInsert(const Request& req);
  Response DoSynchronize(const Request& req);
  Response DoSpecChange(const Request& req);
  Response DoStats(const Request& req);
  Response DoCacheCtl(const Request& req);
  Response DoSnapshotCrc();

  ServerConfig config_;
  SubcubeManager* mgr_;
  /// Atomic: the accept loop reads it per iteration while Stop() closes and
  /// retires it from another thread.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  int max_connections_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  std::thread accept_thread_;

  std::mutex write_mu_;  ///< serializes mutating commands across sessions

  std::mutex sessions_mu_;
  std::condition_variable shutdown_cv_;
  struct SessionSlot {
    int fd = -1;
    std::thread thread;
  };
  std::vector<std::unique_ptr<SessionSlot>> sessions_;
  int open_sessions_ = 0;  ///< guarded by sessions_mu_
};

/// CRC32 over a canonical serialization of every subcube's live rows (name,
/// granularity, coordinates, measures), taken under the shared snapshot lock.
/// The differential anchor for over-the-wire vs. embedded workloads: equal
/// CRCs mean byte-identical warehouses.
uint32_t WarehouseCrc(const SubcubeManager& mgr);

/// Canonical rendering of a query result: a cell-count line followed by one
/// FormatFact line per fact. Shared by the wire path and embedded
/// differential tests so both render identical bytes.
std::string RenderResult(const MultidimensionalObject& mo);

}  // namespace dwred::net
