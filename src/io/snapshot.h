#pragma once

// Binary warehouse snapshots: a versioned, self-contained serialization of a
// warehouse (dimensions with their hierarchies and payloads, measures, fact
// set with names/provenance/responsible actions, and the reduction
// specification). Reduction is a long-running, irreversible process — the
// state between NOW advances has to survive restarts.
//
// Format: little-endian, length-prefixed strings, magic "DWRD", version 1.
// Loading validates structure and re-validates every action against the
// restored warehouse (actions are stored as their source text, so the
// snapshot stays readable by future parsers).

#include <memory>

#include "mdm/mo.h"
#include "spec/action.h"

namespace dwred {

/// Serializes the warehouse and its specification.
std::string SaveWarehouse(const MultidimensionalObject& mo,
                          const ReductionSpecification& spec);

struct LoadedWarehouse {
  std::unique_ptr<MultidimensionalObject> mo;
  ReductionSpecification spec;
};

/// Restores a snapshot. Fails with ParseError on structural corruption and
/// with the parser's diagnostics if a stored action no longer parses.
Result<LoadedWarehouse> LoadWarehouse(std::string_view bytes);

}  // namespace dwred
