#pragma once

// Minimal RFC-4180-style CSV reading and writing: quoted fields, embedded
// commas/quotes/newlines, CRLF tolerance. The warehouse import/export layer
// (warehouse_io.h) builds on this.

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dwred {

/// Parses CSV text into rows of fields. Empty trailing line is ignored.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Renders rows as CSV, quoting fields that need it.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Reads a whole file.
Result<std::string> ReadFile(const std::string& path);

/// Writes a whole file.
Status WriteFile(const std::string& path, std::string_view content);

}  // namespace dwred
