#include "io/recovery.h"

#include <filesystem>
#include <utility>

#include "io/atomic_file.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "io/wire.h"
#include "obs/metrics.h"
#include "reduce/dynamics.h"
#include "runtime/cancel.h"
#include "spec/parser.h"
#include "storage/column.h"
#include "testing/fault.h"

namespace dwred {

namespace {

constexpr char kSnapshotFile[] = "snapshot.dwsnap";
constexpr char kJournalFile[] = "journal.dwal";

/// Durable snapshot container: magic "DWST", version, the applied LSN, an
/// embedded io/snapshot.h warehouse image, the subcube row sets (subcube
/// mode), and a CRC32 trailer over everything before it.
constexpr char kStateMagic[4] = {'D', 'W', 'S', 'T'};
constexpr uint8_t kStateVersion = 1;

// --- FNV-1a 64 over symbolic cell keys -------------------------------------

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

class Fnv {
 public:
  void U8(uint8_t v) { Mix(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) Mix(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Mix(static_cast<uint8_t>(v >> (8 * i)));
  }
  void Bytes(std::string_view s) {
    for (char c : s) Mix(static_cast<uint8_t>(c));
  }
  uint64_t digest() const { return h_; }

 private:
  void Mix(uint8_t b) { h_ = (h_ ^ b) * kFnvPrime; }
  uint64_t h_ = kFnvOffset;
};

/// Hashes one dimension value symbolically (category + display name, not the
/// ValueId) so the digest is stable across value-id assignment differences
/// between the live process and a replay from an older snapshot — time
/// values are materialized on demand, so ids depend on materialization
/// history but (category, name) does not.
void HashValue(Fnv* h, const Dimension& dim, ValueId v) {
  h->U32(dim.value_category(v));
  h->Bytes(dim.value_name(v));
  h->U8(0);
}

// --- Insert redo payload ----------------------------------------------------
//
// aux for kInsertFacts:
//   u32 nrows, u32 ndims, u32 nmeas
//   per row: per dimension one symbolic coordinate —
//     tag 0: plain value  (u32 category, str name)
//     tag 1: time granule (u8 unit, i64 index)
//     tag 2: the dimension's ⊤
//   then nmeas × i64 measure values.
//
// Coordinates are stored symbolically (names and granules, not ValueIds):
// EnsureTimeValue materializes time values on demand, so replay from an
// older snapshot re-interns them in the same order but not necessarily with
// the ids a particular live process saw.

Result<std::string> EncodeInsertAux(const MultidimensionalObject& batch) {
  std::string aux;
  wire::PutU32(&aux, static_cast<uint32_t>(batch.num_facts()));
  wire::PutU32(&aux, static_cast<uint32_t>(batch.num_dimensions()));
  wire::PutU32(&aux, static_cast<uint32_t>(batch.num_measures()));
  for (FactId f = 0; f < batch.num_facts(); ++f) {
    for (DimensionId d = 0; d < batch.num_dimensions(); ++d) {
      const Dimension& dim = *batch.dimension(d);
      ValueId v = batch.Coord(f, d);
      if (v >= dim.num_values()) {
        return Status::InvalidArgument(
            "insert batch: coordinate " + std::to_string(v) +
            " names no value of dimension " + dim.name());
      }
      if (v == dim.top_value()) {
        wire::PutU8(&aux, 2);
      } else if (dim.is_time()) {
        TimeGranule g = dim.granule(v);
        wire::PutU8(&aux, 1);
        wire::PutU8(&aux, static_cast<uint8_t>(g.unit));
        wire::PutI64(&aux, g.index);
      } else {
        wire::PutU8(&aux, 0);
        wire::PutU32(&aux, dim.value_category(v));
        wire::PutStr(&aux, dim.value_name(v));
      }
    }
    for (MeasureId m = 0; m < batch.num_measures(); ++m) {
      wire::PutI64(&aux, batch.Measure(f, m));
    }
  }
  return aux;
}

struct DecodedBatch {
  size_t nrows = 0;
  size_t ndims = 0;
  size_t nmeas = 0;
  std::vector<ValueId> coords;  ///< nrows × ndims
  std::vector<int64_t> meas;    ///< nrows × nmeas
};

/// Resolves a redo payload against the warehouse dimensions (interning time
/// granules as needed — the same materialization the live insert performed).
Result<DecodedBatch> DecodeInsertAux(
    std::string_view aux,
    const std::vector<std::shared_ptr<Dimension>>& dims) {
  wire::Cursor c(aux, "insert redo");
  DecodedBatch b;
  uint32_t nrows, ndims, nmeas;
  DWRED_RETURN_IF_ERROR(c.U32(&nrows));
  DWRED_RETURN_IF_ERROR(c.U32(&ndims));
  DWRED_RETURN_IF_ERROR(c.U32(&nmeas));
  if (ndims != dims.size()) {
    return Status::ParseError("insert redo: dimension count " +
                              std::to_string(ndims) + " != warehouse's " +
                              std::to_string(dims.size()));
  }
  b.nrows = nrows;
  b.ndims = ndims;
  b.nmeas = nmeas;
  // Each row needs at least ndims tag bytes + nmeas × 8 measure bytes.
  if (nrows > 0 && c.remaining() / (ndims + 8u * nmeas) < nrows) {
    return Status::ParseError("insert redo: row count exceeds payload");
  }
  b.coords.reserve(size_t{nrows} * ndims);
  b.meas.reserve(size_t{nrows} * nmeas);
  for (uint32_t r = 0; r < nrows; ++r) {
    for (uint32_t d = 0; d < ndims; ++d) {
      Dimension& dim = *dims[d];
      uint8_t tag;
      DWRED_RETURN_IF_ERROR(c.U8(&tag));
      if (tag == 2) {
        b.coords.push_back(dim.top_value());
      } else if (tag == 1) {
        uint8_t unit;
        int64_t index;
        DWRED_RETURN_IF_ERROR(c.U8(&unit));
        DWRED_RETURN_IF_ERROR(c.I64(&index));
        if (!dim.is_time() || unit >= static_cast<uint8_t>(TimeUnit::kTop)) {
          return Status::ParseError("insert redo: bad time coordinate");
        }
        DWRED_ASSIGN_OR_RETURN(
            ValueId v,
            dim.EnsureTimeValue({static_cast<TimeUnit>(unit), index}));
        b.coords.push_back(v);
      } else if (tag == 0) {
        uint32_t cat;
        std::string name;
        DWRED_RETURN_IF_ERROR(c.U32(&cat));
        DWRED_RETURN_IF_ERROR(c.Str(&name));
        DWRED_ASSIGN_OR_RETURN(ValueId v, dim.ValueByName(cat, name));
        b.coords.push_back(v);
      } else {
        return Status::ParseError("insert redo: unknown coordinate tag " +
                                  std::to_string(tag));
      }
    }
    for (uint32_t m = 0; m < nmeas; ++m) {
      int64_t v;
      DWRED_RETURN_IF_ERROR(c.I64(&v));
      b.meas.push_back(v);
    }
  }
  if (!c.AtEnd()) {
    return Status::ParseError("insert redo: trailing bytes");
  }
  return b;
}

// --- Durable snapshot codec -------------------------------------------------

std::string SaveDurableState(uint64_t applied_lsn,
                             const MultidimensionalObject& mo,
                             const ReductionSpecification& spec,
                             const SubcubeManager* subcubes) {
  std::string s;
  s.append(kStateMagic, 4);
  wire::PutU8(&s, kStateVersion);
  wire::PutU64(&s, applied_lsn);
  wire::PutStr(&s, SaveWarehouse(mo, spec));
  wire::PutU8(&s, subcubes ? 1 : 0);
  if (subcubes) {
    wire::PutU32(&s, static_cast<uint32_t>(subcubes->num_subcubes()));
    for (size_t ci = 0; ci < subcubes->num_subcubes(); ++ci) {
      const FactTable& t = subcubes->subcube(ci).table;
      wire::PutU64(&s, t.num_rows());
      // The segment cursor walks live rows in logical order, so the image is
      // byte-identical to the pre-segmentation flat layout (the manifest —
      // including per-segment column encodings — is a physical property and
      // is rebuilt canonically on load).
      if (storage::ColumnarEnabled()) {
        t.ForEachBatch(0, t.num_rows(), [&](const FactTable::BatchView& b) {
          for (size_t i = 0; i < b.rows(); ++i) {
            for (size_t d = 0; d < t.num_dims(); ++d) {
              wire::PutU32(&s, b.dim_col(d)[i]);
            }
            for (size_t m = 0; m < t.num_measures(); ++m) {
              wire::PutI64(&s, b.meas_col(m)[i]);
            }
          }
        });
      } else {
        t.ForEachRow(0, t.num_rows(),
                     [&](RowId, const FactTable::RowRef& row) {
                       for (size_t d = 0; d < t.num_dims(); ++d) {
                         wire::PutU32(&s, row.coord(d));
                       }
                       for (size_t m = 0; m < t.num_measures(); ++m) {
                         wire::PutI64(&s, row.measure(m));
                       }
                     });
      }
    }
  }
  wire::PutU32(&s, Crc32(s));
  return s;
}

struct DurableState {
  uint64_t applied_lsn = 0;
  LoadedWarehouse wh;
  bool has_subcubes = false;
  std::vector<std::vector<ValueId>> cube_coords;  ///< per cube, rows × ndims
  std::vector<std::vector<int64_t>> cube_meas;    ///< per cube, rows × nmeas
};

Result<DurableState> LoadDurableState(std::string_view bytes) {
  // Shortest well-formed image: header + empty warehouse string + plain-mode
  // flag + CRC trailer.
  if (bytes.size() < 4 + 1 + 8 + 4 + 1 + 4) {
    return Status::ParseError("durable snapshot is truncated");
  }
  if (std::string_view(bytes.data(), 4) != std::string_view(kStateMagic, 4)) {
    return Status::ParseError("durable snapshot has wrong magic");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(bytes.substr(0, bytes.size() - 4)) != stored_crc) {
    return Status::ParseError("durable snapshot CRC mismatch");
  }
  wire::Cursor c(bytes.substr(4, bytes.size() - 8), "durable snapshot");
  DurableState st;
  uint8_t version;
  DWRED_RETURN_IF_ERROR(c.U8(&version));
  if (version != kStateVersion) {
    return Status::ParseError("unsupported durable snapshot version " +
                              std::to_string(version));
  }
  DWRED_RETURN_IF_ERROR(c.U64(&st.applied_lsn));
  std::string wh_bytes;
  DWRED_RETURN_IF_ERROR(c.Str(&wh_bytes));
  DWRED_ASSIGN_OR_RETURN(st.wh, LoadWarehouse(wh_bytes));
  uint8_t has_subcubes;
  DWRED_RETURN_IF_ERROR(c.U8(&has_subcubes));
  if (has_subcubes > 1) {
    return Status::ParseError("durable snapshot: bad organization flag");
  }
  st.has_subcubes = has_subcubes == 1;
  if (st.has_subcubes) {
    const size_t nd = st.wh.mo->num_dimensions();
    const size_t nm = st.wh.mo->num_measures();
    const size_t row_bytes = nd * 4 + nm * 8;
    uint32_t ncubes;
    DWRED_RETURN_IF_ERROR(c.U32(&ncubes));
    for (uint32_t ci = 0; ci < ncubes; ++ci) {
      uint64_t nrows;
      DWRED_RETURN_IF_ERROR(c.U64(&nrows));
      if (row_bytes > 0 && nrows > c.remaining() / row_bytes) {
        return Status::ParseError("durable snapshot: cube " +
                                  std::to_string(ci) +
                                  " row count exceeds image");
      }
      std::vector<ValueId> coords;
      std::vector<int64_t> meas;
      coords.reserve(nrows * nd);
      meas.reserve(nrows * nm);
      for (uint64_t r = 0; r < nrows; ++r) {
        for (size_t d = 0; d < nd; ++d) {
          uint32_t v;
          DWRED_RETURN_IF_ERROR(c.U32(&v));
          coords.push_back(v);
        }
        for (size_t m = 0; m < nm; ++m) {
          int64_t v;
          DWRED_RETURN_IF_ERROR(c.I64(&v));
          meas.push_back(v);
        }
      }
      st.cube_coords.push_back(std::move(coords));
      st.cube_meas.push_back(std::move(meas));
    }
  }
  if (!c.AtEnd()) {
    return Status::ParseError("durable snapshot has trailing bytes");
  }
  return st;
}

// --- Metrics ----------------------------------------------------------------

obs::Counter& RecoveryRuns() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_recovery_runs", "recovery passes (DurableWarehouse::Open)");
  return c;
}

obs::Counter& RecoveryReplayed() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_recovery_ops_replayed",
      "committed journal operations re-applied during recovery");
  return c;
}

obs::Counter& RecoveryRolledBack() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_recovery_intents_rolled_back",
      "uncommitted journal intents discarded during recovery");
  return c;
}

obs::Counter& CheckpointsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_snapshot_checkpoints",
      "durable snapshots written (initial, Checkpoint)");
  return c;
}

/// The fault site guarding the apply step of each operation kind (fires
/// after the intent is durable and before any in-memory mutation).
const char* ApplySite(JournalOpKind kind) {
  switch (kind) {
    case JournalOpKind::kInsertFacts:
      return "insert.apply";
    case JournalOpKind::kReduce:
      return "reduce.apply";
    case JournalOpKind::kEnableSubcubes:
      return "subcube.enable.apply";
    case JournalOpKind::kSynchronize:
      return "sync.apply";
    case JournalOpKind::kSetSpec:
      return "spec.apply";
  }
  return "unknown.apply";
}

}  // namespace

// --- Construction -----------------------------------------------------------

Result<std::unique_ptr<DurableWarehouse>> DurableWarehouse::Create(
    const std::string& dir, std::unique_ptr<MultidimensionalObject> mo,
    ReductionSpecification spec) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory " + dir + ": " +
                                   ec.message());
  }
  const std::string snap_path = dir + "/" + kSnapshotFile;
  if (std::filesystem::exists(snap_path)) {
    return Status::InvalidArgument(snap_path +
                                   " already exists; open it with "
                                   "RecoverWarehouse instead");
  }
  auto dw = std::unique_ptr<DurableWarehouse>(new DurableWarehouse());
  dw->dir_ = dir;
  dw->mo_ = std::move(mo);
  dw->spec_ = std::move(spec);
  DWRED_RETURN_IF_ERROR(AtomicWriteFile(
      snap_path, SaveDurableState(0, *dw->mo_, dw->spec_, nullptr)));
  DWRED_ASSIGN_OR_RETURN(dw->journal_, Journal::Open(dir + "/" + kJournalFile));
  // Discard any journal left over from a crashed earlier initialization: its
  // records predate this snapshot's lineage.
  DWRED_RETURN_IF_ERROR(dw->journal_.Reset());
  CheckpointsCounter().Increment();
  return dw;
}

Result<std::unique_ptr<DurableWarehouse>> DurableWarehouse::Open(
    const std::string& dir, RecoveryStats* stats) {
  DWRED_ASSIGN_OR_RETURN(std::string snap_bytes,
                         ReadFile(dir + "/" + kSnapshotFile));
  DWRED_ASSIGN_OR_RETURN(DurableState st, LoadDurableState(snap_bytes));

  auto dw = std::unique_ptr<DurableWarehouse>(new DurableWarehouse());
  dw->dir_ = dir;
  dw->mo_ = std::move(st.wh.mo);
  dw->spec_ = std::move(st.wh.spec);
  dw->applied_lsn_ = st.applied_lsn;
  if (st.has_subcubes) {
    // Rebuild the cube layout from the specification (deterministic) and
    // refill the tables row by row.
    DWRED_ASSIGN_OR_RETURN(
        SubcubeManager m,
        SubcubeManager::Create(dw->mo_->fact_type(), dw->mo_->dimensions(),
                               dw->mo_->measure_types(), dw->spec_));
    if (st.cube_coords.size() != m.num_subcubes()) {
      return Status::ParseError(
          "durable snapshot: stores " + std::to_string(st.cube_coords.size()) +
          " cubes but the specification builds " +
          std::to_string(m.num_subcubes()));
    }
    dw->subcubes_ = std::make_unique<SubcubeManager>(std::move(m));
    const size_t nd = dw->mo_->num_dimensions();
    const size_t nm = dw->mo_->num_measures();
    for (size_t ci = 0; ci < st.cube_coords.size(); ++ci) {
      const size_t nrows = nd ? st.cube_coords[ci].size() / nd
                              : (nm ? st.cube_meas[ci].size() / nm : 0);
      for (size_t r = 0; r < nrows; ++r) {
        DWRED_RETURN_IF_ERROR(dw->subcubes_->RestoreRow(
            ci, std::span(st.cube_coords[ci]).subspan(r * nd, nd),
            std::span(st.cube_meas[ci]).subspan(r * nm, nm)));
      }
    }
  }

  RecoveryStats rs;
  rs.snapshot_lsn = st.applied_lsn;

  std::string journal_bytes;
  {
    Result<std::string> r = ReadFile(dir + "/" + kJournalFile);
    if (r.ok()) {
      journal_bytes = r.take();
    } else if (r.status().code() != StatusCode::kNotFound) {
      return r.status();
    }
  }
  DWRED_ASSIGN_OR_RETURN(JournalScan scan, ScanJournal(journal_bytes));
  rs.journal_torn_bytes = scan.torn_bytes;

  for (const CommittedOp& cop : scan.committed) {
    if (cop.intent.lsn <= dw->applied_lsn_) continue;  // folded into snapshot
    if (cop.intent.lsn != dw->applied_lsn_ + 1) {
      return Status::ParseError(
          "journal: lsn gap (expected " + std::to_string(dw->applied_lsn_ + 1) +
          ", found " + std::to_string(cop.intent.lsn) + ")");
    }
    // Re-derive the plan against the recovered pre-state and verify it
    // matches the journaled intent — catches snapshot/journal lineage mixups
    // and non-deterministic replay before any mutation happens.
    DWRED_ASSIGN_OR_RETURN(IntentRecord replan, dw->PlanOp(cop.intent.op));
    if (replan.pre_rows != cop.intent.pre_rows ||
        replan.pre_counts != cop.intent.pre_counts ||
        replan.affected_count != cop.intent.affected_count ||
        replan.affected_digest != cop.intent.affected_digest) {
      return Status::ParseError(
          "journal: replay diverged from the intent at lsn " +
          std::to_string(cop.intent.lsn));
    }
    DWRED_RETURN_IF_ERROR(dw->ApplyOp(cop.intent.op));
    if (dw->TotalRows() != cop.commit.post_rows) {
      return Status::ParseError(
          "journal: replay post-image row count mismatch at lsn " +
          std::to_string(cop.intent.lsn));
    }
    dw->applied_lsn_ = cop.intent.lsn;
    ++rs.ops_replayed;
  }
  rs.intents_rolled_back =
      scan.superseded_intents + (scan.has_pending_intent ? 1 : 0);
  rs.recovered_lsn = dw->applied_lsn_;

  DWRED_ASSIGN_OR_RETURN(dw->journal_, Journal::Open(dir + "/" + kJournalFile));

  RecoveryRuns().Increment();
  RecoveryReplayed().Increment(rs.ops_replayed);
  RecoveryRolledBack().Increment(rs.intents_rolled_back);
  if (stats) *stats = rs;
  return dw;
}

// --- Row accounting ---------------------------------------------------------

uint64_t DurableWarehouse::TotalRows() const {
  if (!subcubes_) return mo_->num_facts();
  uint64_t total = 0;
  for (size_t ci = 0; ci < subcubes_->num_subcubes(); ++ci) {
    total += subcubes_->subcube(ci).table.num_rows();
  }
  return total;
}

std::vector<uint64_t> DurableWarehouse::TableRows() const {
  if (!subcubes_) return {mo_->num_facts()};
  std::vector<uint64_t> rows;
  rows.reserve(subcubes_->num_subcubes());
  for (size_t ci = 0; ci < subcubes_->num_subcubes(); ++ci) {
    rows.push_back(subcubes_->subcube(ci).table.num_rows());
  }
  return rows;
}

// --- Plan -------------------------------------------------------------------

Result<IntentRecord> DurableWarehouse::PlanOp(const JournalOp& op) const {
  IntentRecord in;
  in.op = op;
  in.pre_rows = TotalRows();
  in.pre_counts = TableRows();
  Fnv h;
  switch (op.kind) {
    case JournalOpKind::kInsertFacts: {
      // The redo payload *is* the plan: the digest commits to the exact rows.
      wire::Cursor c(op.aux, "insert redo");
      uint32_t nrows;
      DWRED_RETURN_IF_ERROR(c.U32(&nrows));
      in.affected_count = nrows;
      h.Bytes(op.aux);
      break;
    }
    case JournalOpKind::kSetSpec: {
      h.Bytes(op.aux);
      break;
    }
    case JournalOpKind::kEnableSubcubes: {
      if (subcubes_) {
        return Status::InvalidArgument("subcubes are already enabled");
      }
      in.affected_count = mo_->num_facts();
      break;
    }
    case JournalOpKind::kReduce: {
      if (subcubes_) {
        return Status::InvalidArgument(
            "reduce pass applies to the plain organization; use synchronize");
      }
      for (FactId f = 0; f < mo_->num_facts(); ++f) {
        bool deleted = false;
        DWRED_ASSIGN_OR_RETURN(
            std::vector<CategoryId> gran,
            MaxSpecGran(*mo_, spec_, f, op.now_day, nullptr, &deleted));
        (void)gran;
        if (deleted) {
          ++in.affected_count;
          h.U8(1);
          for (DimensionId d = 0; d < mo_->num_dimensions(); ++d) {
            HashValue(&h, *mo_->dimension(d), mo_->Coord(f, d));
          }
          continue;
        }
        DWRED_ASSIGN_OR_RETURN(std::vector<ValueId> cell,
                               CellOf(*mo_, spec_, f, op.now_day));
        bool moved = false;
        for (DimensionId d = 0; d < mo_->num_dimensions(); ++d) {
          if (cell[d] != mo_->Coord(f, d)) moved = true;
        }
        if (!moved) continue;
        ++in.affected_count;
        h.U8(2);
        for (DimensionId d = 0; d < mo_->num_dimensions(); ++d) {
          HashValue(&h, *mo_->dimension(d), cell[d]);
        }
      }
      break;
    }
    case JournalOpKind::kSynchronize: {
      if (!subcubes_) {
        return Status::InvalidArgument(
            "synchronize requires the subcube organization");
      }
      const size_t nd = mo_->num_dimensions();
      std::vector<ValueId> cell(nd);
      for (size_t ci = 0; ci < subcubes_->num_subcubes(); ++ci) {
        const FactTable& t = subcubes_->subcube(ci).table;
        Status scan_status = Status::OK();
        t.ForEachRow(
            0, t.num_rows(), [&](RowId, const FactTable::RowRef& row) {
              if (!scan_status.ok()) return;
              for (size_t d = 0; d < nd; ++d) cell[d] = row.coord(d);
              auto target_r = subcubes_->ResponsibleCube(cell, op.now_day);
              if (!target_r.ok()) {
                scan_status = target_r.status();
                return;
              }
              size_t target = target_r.value();
              if (target == ci) return;
              ++in.affected_count;
              h.U32(static_cast<uint32_t>(ci));
              h.U64(target == SubcubeManager::kDeletedCell
                        ? ~uint64_t{0}
                        : static_cast<uint64_t>(target));
              for (size_t d = 0; d < nd; ++d) {
                HashValue(&h, *mo_->dimension(static_cast<DimensionId>(d)),
                          cell[d]);
              }
            });
        DWRED_RETURN_IF_ERROR(scan_status);
      }
      break;
    }
  }
  in.affected_digest = h.digest();
  return in;
}

// --- Apply ------------------------------------------------------------------

Status DurableWarehouse::ApplyOp(const JournalOp& op) {
  switch (op.kind) {
    case JournalOpKind::kInsertFacts: {
      DWRED_ASSIGN_OR_RETURN(DecodedBatch b,
                             DecodeInsertAux(op.aux, mo_->dimensions()));
      if (b.nmeas != mo_->num_measures()) {
        return Status::ParseError("insert redo: measure count mismatch");
      }
      if (subcubes_) {
        MultidimensionalObject batch(mo_->fact_type(), mo_->dimensions(),
                                     mo_->measure_types());
        for (size_t r = 0; r < b.nrows; ++r) {
          DWRED_RETURN_IF_ERROR(
              batch
                  .AddBottomFact(
                      std::span(b.coords).subspan(r * b.ndims, b.ndims),
                      std::span(b.meas).subspan(r * b.nmeas, b.nmeas))
                  .status());
        }
        return subcubes_->InsertBottomFacts(batch);
      }
      for (size_t r = 0; r < b.nrows; ++r) {
        DWRED_RETURN_IF_ERROR(
            mo_->AddBottomFact(
                   std::span(b.coords).subspan(r * b.ndims, b.ndims),
                   std::span(b.meas).subspan(r * b.nmeas, b.nmeas))
                .status());
      }
      return Status::OK();
    }
    case JournalOpKind::kReduce: {
      ReduceStats stats;
      DWRED_ASSIGN_OR_RETURN(MultidimensionalObject reduced,
                             Reduce(*mo_, spec_, op.now_day, {}, &stats));
      *mo_ = std::move(reduced);
      last_reduce_stats_ = stats;
      return Status::OK();
    }
    case JournalOpKind::kEnableSubcubes: {
      // Build the new organization fully before swapping it in, so a failure
      // leaves the plain warehouse untouched.
      std::string fact_type = mo_->fact_type();
      std::vector<std::shared_ptr<Dimension>> dims = mo_->dimensions();
      std::vector<MeasureType> measures = mo_->measure_types();
      DWRED_ASSIGN_OR_RETURN(
          SubcubeManager m,
          SubcubeManager::Create(fact_type, dims, measures, spec_));
      DWRED_RETURN_IF_ERROR(m.InsertBottomFacts(*mo_));
      subcubes_ = std::make_unique<SubcubeManager>(std::move(m));
      *mo_ = MultidimensionalObject(fact_type, dims, measures);
      return Status::OK();
    }
    case JournalOpKind::kSynchronize: {
      DWRED_ASSIGN_OR_RETURN(last_sync_migrated_,
                             subcubes_->Synchronize(op.now_day));
      return Status::OK();
    }
    case JournalOpKind::kSetSpec: {
      wire::Cursor c(op.aux, "setspec redo");
      uint8_t mode;
      DWRED_RETURN_IF_ERROR(c.U8(&mode));
      if (mode == 1) {
        uint32_t n;
        DWRED_RETURN_IF_ERROR(c.U32(&n));
        std::vector<Action> actions;
        actions.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          std::string name, text;
          DWRED_RETURN_IF_ERROR(c.Str(&name));
          DWRED_RETURN_IF_ERROR(c.Str(&text));
          DWRED_ASSIGN_OR_RETURN(Action a, ParseAction(*mo_, text, name));
          actions.push_back(std::move(a));
        }
        DWRED_ASSIGN_OR_RETURN(ReductionSpecification next,
                               InsertActions(*mo_, spec_, std::move(actions)));
        spec_ = std::move(next);
        return Status::OK();
      }
      if (mode == 2) {
        std::string name;
        DWRED_RETURN_IF_ERROR(c.Str(&name));
        ActionId id = kNoAction;
        for (size_t i = 0; i < spec_.size(); ++i) {
          if (spec_.action(static_cast<ActionId>(i)).name == name) {
            id = static_cast<ActionId>(i);
            break;
          }
        }
        if (id == kNoAction) {
          return Status::NotFound("no action named '" + name +
                                  "' in the specification");
        }
        DWRED_ASSIGN_OR_RETURN(
            ReductionSpecification next,
            DeleteActions(*mo_, spec_, {id}, op.now_day));
        spec_ = std::move(next);
        return Status::OK();
      }
      return Status::ParseError("setspec redo: unknown mode " +
                                std::to_string(mode));
    }
  }
  return Status::Internal("unreachable operation kind");
}

// --- The two-phase protocol -------------------------------------------------

Status DurableWarehouse::RunJournaled(JournalOp op) {
  if (poisoned_) {
    return Status::Internal(
        "warehouse is poisoned by an earlier IO failure; reopen " + dir_ +
        " to recover");
  }
  // An already-cancelled or expired context bails before the intent is even
  // planned — no journal traffic for an operation that will not run.
  DWRED_RETURN_IF_ERROR(
      runtime::CountAbort(runtime::CurrentOpContext().Check()));
  DWRED_ASSIGN_OR_RETURN(IntentRecord intent, PlanOp(op));
  intent.lsn = applied_lsn_ + 1;
  // An intent-append failure leaves memory untouched: whatever (possibly
  // torn) prefix reached the file is superseded by the next append or rolled
  // back by recovery — no poison.
  DWRED_RETURN_IF_ERROR(journal_.AppendIntent(intent));
  Status applied = testing::FaultPoint(ApplySite(op.kind));
  if (applied.ok()) applied = ApplyOp(op);
  if (!applied.ok()) {
    if (runtime::IsAbort(applied.code())) {
      // Cooperative aborts are clean by contract (runtime/cancel.h): every
      // poll site sits in a read-only phase, so memory is still the journal's
      // pre-image. The dangling intent is superseded by the next append or
      // rolled back at recovery — exactly the crash-before-apply semantics.
      return applied;
    }
    // The apply may have mutated part of the state; memory is no longer
    // provably the journal's pre-image.
    poisoned_ = true;
    return applied;
  }
  applied_lsn_ = intent.lsn;
  CommitRecord commit{intent.lsn, TotalRows()};
  Status committed = journal_.AppendCommit(commit);
  if (!committed.ok()) {
    poisoned_ = true;  // memory is ahead of the journal
    return committed;
  }
  return Status::OK();
}

// --- Journaled operations ---------------------------------------------------

Status DurableWarehouse::InsertFacts(const MultidimensionalObject& batch) {
  if (batch.num_dimensions() != mo_->num_dimensions() ||
      batch.num_measures() != mo_->num_measures()) {
    return Status::InvalidArgument(
        "insert batch schema mismatch: " +
        std::to_string(batch.num_dimensions()) + " dimensions / " +
        std::to_string(batch.num_measures()) + " measures vs warehouse's " +
        std::to_string(mo_->num_dimensions()) + " / " +
        std::to_string(mo_->num_measures()));
  }
  DWRED_ASSIGN_OR_RETURN(std::string aux, EncodeInsertAux(batch));
  // Dry-run the resolution + bottom-granularity checks against the warehouse
  // so user errors surface cleanly *before* the intent is journaled. The
  // time values this materializes are exactly the ones the apply (and any
  // replay) interns, in the same order.
  {
    DWRED_ASSIGN_OR_RETURN(DecodedBatch b,
                           DecodeInsertAux(aux, mo_->dimensions()));
    MultidimensionalObject trial(mo_->fact_type(), mo_->dimensions(),
                                 mo_->measure_types());
    for (size_t r = 0; r < b.nrows; ++r) {
      DWRED_RETURN_IF_ERROR(
          trial
              .AddBottomFact(std::span(b.coords).subspan(r * b.ndims, b.ndims),
                             std::span(b.meas).subspan(r * b.nmeas, b.nmeas))
              .status());
    }
  }
  return RunJournaled({JournalOpKind::kInsertFacts, 0, std::move(aux)});
}

Status DurableWarehouse::ApplyActions(
    const std::vector<std::pair<std::string, std::string>>& staged) {
  if (subcubes_) {
    return Status::InvalidArgument(
        "specification changes under the subcube organization are not "
        "journaled; change the specification before enabling subcubes");
  }
  if (staged.empty()) {
    return Status::InvalidArgument("no actions staged");
  }
  // Trial parse + insert (discarded) so Table-1 syntax errors and
  // NonCrossing/Growing violations return cleanly without journaling.
  std::vector<Action> trial;
  trial.reserve(staged.size());
  for (const auto& [name, text] : staged) {
    DWRED_ASSIGN_OR_RETURN(Action a, ParseAction(*mo_, text, name));
    trial.push_back(std::move(a));
  }
  DWRED_RETURN_IF_ERROR(InsertActions(*mo_, spec_, std::move(trial)).status());
  std::string aux;
  wire::PutU8(&aux, 1);
  wire::PutU32(&aux, static_cast<uint32_t>(staged.size()));
  for (const auto& [name, text] : staged) {
    wire::PutStr(&aux, name);
    wire::PutStr(&aux, text);
  }
  return RunJournaled({JournalOpKind::kSetSpec, 0, std::move(aux)});
}

Status DurableWarehouse::DeleteAction(const std::string& name,
                                      int64_t now_day) {
  if (subcubes_) {
    return Status::InvalidArgument(
        "specification changes under the subcube organization are not "
        "journaled");
  }
  ActionId id = kNoAction;
  for (size_t i = 0; i < spec_.size(); ++i) {
    if (spec_.action(static_cast<ActionId>(i)).name == name) {
      id = static_cast<ActionId>(i);
      break;
    }
  }
  if (id == kNoAction) {
    return Status::NotFound("no action named '" + name +
                            "' in the specification");
  }
  // Trial delete (discarded) so Definition-4 precondition failures return
  // cleanly without journaling.
  DWRED_RETURN_IF_ERROR(DeleteActions(*mo_, spec_, {id}, now_day).status());
  std::string aux;
  wire::PutU8(&aux, 2);
  wire::PutStr(&aux, name);
  return RunJournaled({JournalOpKind::kSetSpec, now_day, std::move(aux)});
}

Status DurableWarehouse::ReducePass(int64_t now_day, ReduceStats* stats) {
  if (subcubes_) {
    return Status::InvalidArgument(
        "reduce pass applies to the plain organization; use SynchronizePass");
  }
  DWRED_RETURN_IF_ERROR(RunJournaled({JournalOpKind::kReduce, now_day, ""}));
  if (stats) *stats = last_reduce_stats_;
  return Status::OK();
}

Status DurableWarehouse::EnableSubcubes() {
  if (subcubes_) {
    return Status::InvalidArgument("subcubes are already enabled");
  }
  // Pre-check the bottom-granularity requirement so the common user error
  // (enabling subcubes after a reduce pass) fails before journaling.
  for (FactId f = 0; f < mo_->num_facts(); ++f) {
    for (DimensionId d = 0; d < mo_->num_dimensions(); ++d) {
      const Dimension& dim = *mo_->dimension(d);
      ValueId v = mo_->Coord(f, d);
      if (v != dim.top_value() &&
          dim.value_category(v) != dim.type().bottom()) {
        return Status::InvalidArgument(
            "cannot enable subcubes: fact " + mo_->FactName(f) +
            " is aggregated above bottom in dimension " + dim.name() +
            " (enable subcubes before reducing)");
      }
    }
  }
  return RunJournaled({JournalOpKind::kEnableSubcubes, 0, ""});
}

Status DurableWarehouse::SynchronizePass(int64_t now_day, size_t* migrated) {
  if (!subcubes_) {
    return Status::InvalidArgument(
        "synchronize requires the subcube organization; call EnableSubcubes");
  }
  DWRED_RETURN_IF_ERROR(
      RunJournaled({JournalOpKind::kSynchronize, now_day, ""}));
  if (migrated) *migrated = last_sync_migrated_;
  return Status::OK();
}

// --- Checkpoint -------------------------------------------------------------

Status DurableWarehouse::Checkpoint() {
  if (poisoned_) {
    return Status::Internal(
        "warehouse is poisoned by an earlier IO failure; reopen " + dir_ +
        " to recover");
  }
  DWRED_RETURN_IF_ERROR(AtomicWriteFile(
      dir_ + "/" + kSnapshotFile,
      SaveDurableState(applied_lsn_, *mo_, spec_, subcubes_.get())));
  // A failure from here on is harmless: the snapshot already covers every
  // journaled operation, so recovery skips the stale records.
  DWRED_RETURN_IF_ERROR(journal_.Reset());
  CheckpointsCounter().Increment();
  return Status::OK();
}

Result<std::unique_ptr<DurableWarehouse>> RecoverWarehouse(
    const std::string& dir, RecoveryStats* stats) {
  return DurableWarehouse::Open(dir, stats);
}

}  // namespace dwred
