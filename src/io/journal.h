#pragma once

// Write-ahead intent journal for the durability layer (docs/DURABILITY.md).
//
// Reduction physically and irreversibly deletes detail facts (Definition 2,
// Section 8) and subcube synchronization migrates rows between physical
// cubes (Section 7.2); a crash in the middle of either pass must not lose or
// double-count facts. Following ARIES-style write-ahead logging, every
// mutating pass is split into a two-phase plan/apply protocol:
//
//   1. append an *intent* record — the operation (kind, NOW value, redo
//      payload), the pre-image row counts, and a digest of the affected cell
//      keys — and fsync;
//   2. apply the mutation in memory;
//   3. append a *commit* record (the post-image row count) and fsync.
//
// On-disk format: a sequence of length-prefixed, CRC32-checksummed records
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// with no file header, so a torn tail (truncated or checksum-failing final
// record, the normal residue of a crash mid-append) is recognized and
// discarded by the scanner. Records after a corrupt record are unreachable
// by design — the journal is append-only and replayed strictly in order.
//
// Recovery (io/recovery.h) replays *committed* operations newer than the
// last good snapshot and rolls back (ignores) intents without a matching
// commit.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dwred {

/// Journaled operation kinds. The redo payload (`aux`) makes each operation
/// deterministic to re-apply against the pre-state:
/// insert carries the batch rows, set-spec the action texts; reduce /
/// enable-subcubes / synchronize are pure functions of (state, now_day).
enum class JournalOpKind : uint8_t {
  kInsertFacts = 1,     ///< bulk fact insert (aux: encoded rows)
  kReduce = 2,          ///< Definition 2 reduction pass at now_day
  kEnableSubcubes = 3,  ///< switch to the Section 7 subcube organization
  kSynchronize = 4,     ///< Section 7.2 synchronization pass at now_day
  kSetSpec = 5,         ///< replace the specification (aux: action texts)
};

/// One journaled operation: what to re-apply during recovery.
struct JournalOp {
  JournalOpKind kind = JournalOpKind::kInsertFacts;
  int64_t now_day = 0;  ///< NOW for reduce/synchronize; 0 otherwise
  std::string aux;      ///< op-specific redo payload
};

/// The plan half of the two-phase protocol.
struct IntentRecord {
  uint64_t lsn = 0;  ///< 1-based sequence number of the operation
  JournalOp op;
  uint64_t pre_rows = 0;  ///< total logical rows before the operation
  /// Pre-image row count per physical table (one entry for a plain
  /// warehouse; one per subcube in subcube mode). Replay verifies these.
  std::vector<uint64_t> pre_counts;
  uint64_t affected_count = 0;   ///< cells the plan pass says will change
  uint64_t affected_digest = 0;  ///< FNV-1a digest of the affected cell keys
};

/// The commit half: present iff the apply completed.
struct CommitRecord {
  uint64_t lsn = 0;
  uint64_t post_rows = 0;  ///< total logical rows after the operation
};

/// One decoded record.
struct JournalRecord {
  enum class Type : uint8_t { kIntent = 1, kCommit = 2 };
  Type type = Type::kIntent;
  IntentRecord intent;  ///< valid when type == kIntent
  CommitRecord commit;  ///< valid when type == kCommit
};

/// An intent paired with its commit.
struct CommittedOp {
  IntentRecord intent;
  CommitRecord commit;
};

/// Result of scanning a journal file.
struct JournalScan {
  std::vector<CommittedOp> committed;  ///< in append (= lsn) order
  bool has_pending_intent = false;     ///< trailing intent without a commit
  IntentRecord pending_intent;
  size_t superseded_intents = 0;  ///< intents replaced by a later intent
  size_t records = 0;             ///< well-formed records decoded
  size_t torn_bytes = 0;          ///< bytes discarded at the torn tail
};

/// Frames a record: [len][crc][payload].
std::string EncodeJournalRecord(const JournalRecord& rec);

/// Decodes a whole journal image, tolerating a torn tail. Fails only on
/// structural impossibilities inside well-formed records (e.g. an unknown
/// record type with a valid checksum — a version skew, not a torn write).
Result<JournalScan> ScanJournal(std::string_view bytes);

/// An open, append-only journal file with explicit fsync barriers.
/// Fault sites: "journal.intent.write", "journal.intent.fsync",
/// "journal.commit.write", "journal.commit.fsync", "journal.reset".
class Journal {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  ~Journal();

  /// Opens (creating if absent) the journal for appending.
  static Result<Journal> Open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends + fsyncs an intent record. On any error the journal must be
  /// considered poisoned: the caller reopens via recovery.
  Status AppendIntent(const IntentRecord& rec);

  /// Appends + fsyncs a commit record.
  Status AppendCommit(const CommitRecord& rec);

  /// Truncates the journal to empty (after a successful snapshot
  /// checkpoint) and fsyncs.
  Status Reset();

  void Close();

 private:
  Status Append(const JournalRecord& rec, const char* write_site,
                const char* fsync_site);

  std::string path_;
  int fd_ = -1;
};

}  // namespace dwred
