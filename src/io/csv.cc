#include "io/csv.h"

#include <cstdio>

#include "io/atomic_file.h"

namespace dwred {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("quote inside unquoted CSV field at offset " +
                                    std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = false;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (field_started || !row.empty()) end_row();
  return rows;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      const std::string& f = row[i];
      bool quote = f.find_first_of(",\"\n\r") != std::string::npos;
      if (quote) {
        out += '"';
        for (char c : f) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += f;
      }
    }
    out += '\n';
  }
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::NotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

Status WriteFile(const std::string& path, std::string_view content) {
  // Every whole-file write goes through the tmp + fsync + rename discipline:
  // an in-place truncating write could destroy the only copy of an export on
  // a crash mid-write.
  return AtomicWriteFile(path, content);
}

}  // namespace dwred
