#pragma once

// Crash-safe warehouse sessions (docs/DURABILITY.md): a DurableWarehouse
// binds an in-memory warehouse (plain MO or the Section 7 subcube
// organization) to an on-disk directory holding
//
//   <dir>/snapshot.dwsnap   last good state (atomic rename, CRC32 trailer,
//                           applied-LSN stamp)
//   <dir>/journal.dwal      write-ahead intent journal (io/journal.h)
//
// Every mutating pass runs the two-phase plan/apply protocol: plan (compute
// pre-image row counts and the affected-cell digest), append + fsync the
// intent record, apply the mutation in memory, append + fsync the commit
// record. A snapshot checkpoint (Checkpoint) folds the journal into a fresh
// snapshot via tmp-file + fsync + atomic rename, then truncates the journal.
//
// RecoverWarehouse replays the journal against the last good snapshot:
// committed operations newer than the snapshot's applied LSN are re-applied
// (deterministically — the intent's pre-image counts and affected-cell
// digest are re-derived and verified), intents without a commit are rolled
// back by ignoring them. Replay is idempotent: operations at or below the
// snapshot's LSN are skipped, so a crash between the snapshot rename and the
// journal truncation never double-applies.

#include <memory>
#include <string>

#include "io/journal.h"
#include "mdm/mo.h"
#include "reduce/semantics.h"
#include "spec/action.h"
#include "subcube/manager.h"

namespace dwred {

/// What recovery found and did.
struct RecoveryStats {
  uint64_t snapshot_lsn = 0;       ///< applied LSN stamped in the snapshot
  uint64_t recovered_lsn = 0;      ///< LSN after replaying the journal
  size_t ops_replayed = 0;         ///< committed ops re-applied
  size_t intents_rolled_back = 0;  ///< uncommitted intents discarded
  size_t journal_torn_bytes = 0;   ///< bytes dropped from the torn tail
};

/// A warehouse whose mutating passes are journaled and snapshot-checkpointed.
class DurableWarehouse {
 public:
  DurableWarehouse(const DurableWarehouse&) = delete;
  DurableWarehouse& operator=(const DurableWarehouse&) = delete;

  /// Initializes `dir` (created if needed) from an in-memory warehouse:
  /// writes the initial snapshot and opens an empty journal. Fails if the
  /// directory already holds a snapshot.
  static Result<std::unique_ptr<DurableWarehouse>> Create(
      const std::string& dir, std::unique_ptr<MultidimensionalObject> mo,
      ReductionSpecification spec);

  /// Opens `dir`, running recovery: loads the last good snapshot, replays
  /// committed journal operations newer than it, rolls back uncommitted
  /// intents. Does not checkpoint — call Checkpoint() to fold the journal.
  static Result<std::unique_ptr<DurableWarehouse>> Open(
      const std::string& dir, RecoveryStats* stats = nullptr);

  const std::string& dir() const { return dir_; }
  const MultidimensionalObject& mo() const { return *mo_; }
  const ReductionSpecification& spec() const { return spec_; }
  /// Null until EnableSubcubes.
  const SubcubeManager* subcubes() const { return subcubes_.get(); }
  /// Count of committed operations (the next intent gets applied_lsn()+1).
  uint64_t applied_lsn() const { return applied_lsn_; }
  /// True after an IO failure mid-protocol left memory ahead of the journal;
  /// every further mutation fails until the directory is reopened.
  bool poisoned() const { return poisoned_; }

  /// Journaled bulk insert. Routes to the plain MO, or to the bottom subcube
  /// once EnableSubcubes ran (bottom-granularity coordinates required then).
  Status InsertFacts(const MultidimensionalObject& batch);

  /// Journaled specification change via the insert operator (Section 5):
  /// parses and validates the staged `(name, action text)` pairs against the
  /// current warehouse *before* journaling, then re-runs the identical
  /// parse + InsertActions inside the applied operation so recovery replays
  /// it deterministically. Plain mode only.
  Status ApplyActions(
      const std::vector<std::pair<std::string, std::string>>& staged);

  /// Journaled specification change via the delete operator (Definition 4)
  /// at `now_day`. Plain mode only.
  Status DeleteAction(const std::string& name, int64_t now_day);

  /// Journaled Definition 2 reduction pass. Plain mode only.
  Status ReducePass(int64_t now_day, ReduceStats* stats = nullptr);

  /// Journaled switch to the Section 7 subcube organization: builds the cube
  /// layout from the current specification and moves every (bottom
  /// granularity) fact into the bottom cube.
  Status EnableSubcubes();

  /// Journaled Section 7.2 synchronization pass. Subcube mode only.
  Status SynchronizePass(int64_t now_day, size_t* migrated = nullptr);

  /// Writes a fresh snapshot atomically and truncates the journal.
  Status Checkpoint();

 private:
  DurableWarehouse() = default;

  /// Computes the intent for `op` against the current state (pre-image row
  /// counts, affected cell count + digest).
  Result<IntentRecord> PlanOp(const JournalOp& op) const;

  /// Applies `op` to the in-memory state. Shared by the live path and
  /// recovery replay so both perform the identical mutation sequence.
  Status ApplyOp(const JournalOp& op);

  /// Plan + intent + apply + commit.
  Status RunJournaled(JournalOp op);

  uint64_t TotalRows() const;
  std::vector<uint64_t> TableRows() const;

  std::string dir_;
  std::unique_ptr<MultidimensionalObject> mo_;
  ReductionSpecification spec_;
  std::unique_ptr<SubcubeManager> subcubes_;
  Journal journal_;
  uint64_t applied_lsn_ = 0;
  bool poisoned_ = false;
  ReduceStats last_reduce_stats_;
  size_t last_sync_migrated_ = 0;
};

/// The recovery entry point (`dwredctl recover`): DurableWarehouse::Open —
/// load the last good snapshot, replay committed-but-unsnapshotted passes,
/// roll back uncommitted intents.
Result<std::unique_ptr<DurableWarehouse>> RecoverWarehouse(
    const std::string& dir, RecoveryStats* stats = nullptr);

}  // namespace dwred
