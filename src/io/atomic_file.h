#pragma once

// Crash-safe file primitives (docs/DURABILITY.md): CRC32 checksumming,
// explicit fsync barriers, and atomic whole-file replacement in the
// tmp-file + fsync + rename discipline of LSM stores' MANIFEST handling.
// Every IO boundary is guarded by a named fault-injection site
// (testing/fault.h) so the crash-matrix test can kill the process at each.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dwred {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/RocksDB convention) of `data`.
uint32_t Crc32(std::string_view data);

/// Incremental variant: continues a CRC started with Crc32 (pass the previous
/// return value as `seed`; start with 0).
uint32_t Crc32(std::string_view data, uint32_t seed);

/// fsyncs an open file descriptor. Fault site "file.fsync".
Status FsyncFd(int fd, const std::string& what);

/// fsyncs a directory so a rename/creation inside it is durable.
/// Fault site "dir.fsync".
Status FsyncDir(const std::string& dir);

/// Replaces `path` atomically: writes `<path>.tmp.<pid>.<seq>` (pid for
/// cross-process uniqueness, a process-wide counter for same-process
/// concurrent writers — two threads writing one destination must not clobber
/// each other's temp file), fsyncs it, renames it over `path`, and fsyncs
/// the containing directory. A crash at any point leaves either the old file intact or the
/// new file complete — never a truncated or interleaved mix. Fault sites:
/// "atomic.tmp.write", "atomic.tmp.fsync", "atomic.rename",
/// "atomic.dir.fsync".
Status AtomicWriteFile(const std::string& path, std::string_view content);

}  // namespace dwred
