#include "io/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/retry.h"
#include "testing/fault.h"

namespace dwred {

namespace {

/// Records fsync wall time; the durability layer's dominant cost.
obs::Histogram& FsyncLatency() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "dwred_io_fsync_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one fsync barrier (journal, snapshot, directory)");
  return h;
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  // Table-driven CRC-32 (IEEE), nibble-at-a-time to keep the table tiny.
  static const uint32_t kTable[16] = {
      0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac, 0x76dc4190, 0x6b6b51f4,
      0x4db26158, 0x5005713c, 0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
      0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};
  uint32_t crc = ~seed;
  for (char ch : data) {
    uint8_t b = static_cast<uint8_t>(ch);
    crc = kTable[(crc ^ b) & 0x0f] ^ (crc >> 4);
    crc = kTable[(crc ^ (b >> 4)) & 0x0f] ^ (crc >> 4);
  }
  return ~crc;
}

uint32_t Crc32(std::string_view data) { return Crc32(data, 0); }

Status FsyncFd(int fd, const std::string& what) {
  DWRED_RETURN_IF_ERROR(testing::FaultPoint("file.fsync"));
  obs::TraceSpan span("io.fsync", &FsyncLatency());
  if (::fsync(fd) != 0) {
    return Status::Internal("fsync failed for " + what + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  DWRED_RETURN_IF_ERROR(testing::FaultPoint("dir.fsync"));
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory " + dir + " for fsync: " +
                            std::strerror(errno));
  }
  obs::TraceSpan span("io.fsync", &FsyncLatency());
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync failed for directory " + dir + ": " +
                            std::strerror(saved));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  // The temp name carries the pid (cross-process uniqueness: two dwredctl
  // runs exporting the same snapshot) *and* a process-wide counter
  // (same-process uniqueness: two dwredd sessions checkpointing the same
  // destination from different threads would otherwise O_TRUNC each other's
  // in-flight temp file and steal each other's rename source). Each writer
  // renames its own file, so the destination ends up whole either way.
  static std::atomic<uint64_t> g_tmp_seq{0};
  const uint64_t seq = g_tmp_seq.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(seq);

  DWRED_RETURN_IF_ERROR(testing::FaultPoint("atomic.tmp.write"));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot write " + tmp + ": " +
                                   std::strerror(errno));
  }
  size_t off = 0;
  while (off < content.size()) {
    ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("short write to " + tmp + ": " +
                              std::strerror(saved));
    }
    off += static_cast<size_t>(n);
  }

  Status fault = testing::FaultPoint("atomic.tmp.fsync");
  if (!fault.ok()) {
    ::close(fd);
    return fault;
  }
  {
    obs::TraceSpan span("io.fsync", &FsyncLatency());
    if (::fsync(fd) != 0) {
      int saved = errno;
      ::close(fd);
      return Status::Internal("fsync failed for " + tmp + ": " +
                              std::strerror(saved));
    }
  }
  if (::close(fd) != 0) {
    return Status::Internal("close failed for " + tmp + ": " +
                            std::strerror(errno));
  }

  DWRED_RETURN_IF_ERROR(testing::FaultPoint("atomic.rename"));
  // The rename either replaces `path` whole or leaves it untouched, so a
  // transient failure is safe to retry. The fault point stays outside the
  // retried lambda: injected rename faults are deterministic by design.
  DWRED_RETURN_IF_ERROR(runtime::RetryWithBackoff(
      runtime::RetryPolicy{},
      [&]() -> Status {
        if (::rename(tmp.c_str(), path.c_str()) != 0) {
          return Status::Internal("rename " + tmp + " -> " + path +
                                  " failed: " + std::strerror(errno));
        }
        return Status::OK();
      },
      "atomic-file rename"));

  DWRED_RETURN_IF_ERROR(testing::FaultPoint("atomic.dir.fsync"));
  return FsyncDir(DirOf(path));
}

}  // namespace dwred
