#pragma once

// Little-endian wire helpers shared by the journal and durable-snapshot
// codecs: put-style appenders onto a std::string and a bounds-checked read
// cursor. Every read is checked against the remaining payload — overrunning
// a checksummed record means version skew or a codec bug, never a torn
// write, so overruns surface as ParseError.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dwred::wire {

inline void PutU8(std::string* s, uint8_t v) {
  s->push_back(static_cast<char>(v));
}
inline void PutU32(std::string* s, uint32_t v) {
  s->append(reinterpret_cast<const char*>(&v), 4);
}
inline void PutU64(std::string* s, uint64_t v) {
  s->append(reinterpret_cast<const char*>(&v), 8);
}
inline void PutI64(std::string* s, int64_t v) {
  s->append(reinterpret_cast<const char*>(&v), 8);
}
inline void PutStr(std::string* s, std::string_view v) {
  PutU32(s, static_cast<uint32_t>(v.size()));
  s->append(v.data(), v.size());
}

/// Bounds-checked reader over one payload. `what` names the enclosing
/// structure in error messages ("journal", "durable snapshot", ...).
class Cursor {
 public:
  explicit Cursor(std::string_view data, const char* what = "record")
      : data_(data), what_(what) {}

  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U32(uint32_t* v) { return Raw(v, 4); }
  Status U64(uint64_t* v) { return Raw(v, 8); }
  Status I64(int64_t* v) { return Raw(v, 8); }
  Status Str(std::string* s) {
    uint32_t n;
    DWRED_RETURN_IF_ERROR(U32(&n));
    if (n > remaining()) {
      return Status::ParseError(std::string(what_) +
                                ": string length exceeds payload");
    }
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Raw(void* p, size_t n) {
    if (n > remaining()) {
      return Status::ParseError(std::string(what_) + ": payload truncated");
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  const char* what_;
  size_t pos_ = 0;
};

}  // namespace dwred::wire
