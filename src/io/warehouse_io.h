#pragma once

// Star-schema CSV import/export — the glue a downstream warehouse needs to
// adopt the library with real data:
//
//  * dimension CSVs are denormalized rollup tables in the style of the
//    paper's Table 2 ("url,domain,domain_grp"): the header names the
//    categories bottom-up along a linear hierarchy, each row one bottom
//    value with its ancestors;
//  * fact CSVs carry, per dimension, a category column and a value column —
//    so reduced warehouses of *mixed* granularity round-trip — plus one
//    column per measure;
//  * specification files hold one action per line ("name: action-text",
//    '#' comments), parsed against the warehouse.

#include <memory>

#include "mdm/mo.h"
#include "spec/action.h"

namespace dwred {

/// Builds a dimension with a linear hierarchy from denormalized CSV text.
/// The header row names the categories from the bottom up; a TOP category is
/// appended automatically. Repeated ancestor values are interned once;
/// inconsistent rollups (the same value with two different parents) fail.
Result<Dimension> ReadDimensionCsv(const std::string& dim_name,
                                   std::string_view csv_text);

/// Writes a dimension as a denormalized rollup table over the categories on
/// the path from its bottom to (excluding) TOP. Only linear hierarchies are
/// supported (the Time dimension is built-in; see Dimension::MakeTimeDimension).
Result<std::string> WriteDimensionCsv(const Dimension& dim);

/// Writes an MO's facts: columns "<dim>:category", "<dim>:value" per
/// dimension and one column per measure.
std::string WriteFactCsv(const MultidimensionalObject& mo);

/// Appends facts from CSV text (the WriteFactCsv layout) to `mo`. Values are
/// resolved by category + name; unknown time values are materialized from
/// their granule spelling; unknown categorical values are an error.
Status ReadFactCsv(MultidimensionalObject* mo, std::string_view csv_text);

/// Parses a specification file: one action per line, optionally prefixed
/// "name:", blank lines and '#' comments ignored.
Result<std::vector<Action>> ReadSpecificationText(
    const MultidimensionalObject& mo, std::string_view text);

}  // namespace dwred
