#include "io/warehouse_io.h"

#include <cctype>

#include "common/strings.h"

#include "io/csv.h"
#include "spec/parser.h"

namespace dwred {

Result<Dimension> ReadDimensionCsv(const std::string& dim_name,
                                   std::string_view csv_text) {
  DWRED_ASSIGN_OR_RETURN(auto rows, ParseCsv(csv_text));
  if (rows.empty()) {
    return Status::InvalidArgument("dimension CSV has no header");
  }
  const std::vector<std::string>& header = rows[0];
  if (header.empty()) {
    return Status::InvalidArgument("dimension CSV header is empty");
  }

  DimensionType type(dim_name);
  std::vector<CategoryId> cats;
  for (const std::string& name : header) {
    cats.push_back(type.AddCategory(name));
  }
  CategoryId top = type.AddCategory("TOP");
  for (size_t i = 0; i + 1 < cats.size(); ++i) {
    DWRED_RETURN_IF_ERROR(type.AddEdge(cats[i], cats[i + 1]));
  }
  DWRED_RETURN_IF_ERROR(type.AddEdge(cats.back(), top));
  DWRED_RETURN_IF_ERROR(type.Finalize());

  Dimension dim(type);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size()) {
      return Status::InvalidArgument(
          "dimension CSV row " + std::to_string(r) + " has " +
          std::to_string(row.size()) + " fields, header has " +
          std::to_string(header.size()));
    }
    // Intern top-down so parents exist.
    ValueId parent = dim.top_value();
    for (size_t i = header.size(); i-- > 0;) {
      CategoryId cat = cats[i];
      auto existing = dim.ValueByName(cat, row[i]);
      if (existing.ok()) {
        // Consistency: the interned value must have the same parent chain.
        ValueId up = dim.Parents(existing.value())[0];
        if (up != parent) {
          return Status::InvalidArgument(
              "value '" + row[i] + "' in category " + header[i] +
              " rolls up inconsistently across rows (row " +
              std::to_string(r) + ")");
        }
        parent = existing.value();
      } else {
        DWRED_ASSIGN_OR_RETURN(parent, dim.AddValue(row[i], cat, parent));
      }
    }
  }
  return dim;
}

Result<std::string> WriteDimensionCsv(const Dimension& dim) {
  const DimensionType& type = dim.type();
  if (!type.IsLinear()) {
    return Status::InvalidArgument(
        "only linear hierarchies export to denormalized CSV (dimension " +
        dim.name() + " is non-linear)");
  }
  // The chain from bottom to (excluding) TOP.
  std::vector<CategoryId> chain;
  CategoryId c = type.bottom();
  while (c != type.top()) {
    chain.push_back(c);
    const std::vector<CategoryId>& anc = type.Anc(c);
    if (anc.empty()) break;
    c = anc[0];
  }

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  for (CategoryId cc : chain) header.push_back(type.category_name(cc));
  rows.push_back(header);
  for (ValueId v : dim.CategoryExtent(type.bottom())) {
    std::vector<std::string> row;
    for (CategoryId cc : chain) {
      ValueId up = dim.Rollup(v, cc);
      row.push_back(dim.value_name(up));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

std::string WriteFactCsv(const MultidimensionalObject& mo) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    const std::string& n = mo.dimension(static_cast<DimensionId>(d))->name();
    header.push_back(n + ":category");
    header.push_back(n + ":value");
  }
  for (size_t m = 0; m < mo.num_measures(); ++m) {
    header.push_back(mo.measure_type(static_cast<MeasureId>(m)).name);
  }
  rows.push_back(std::move(header));

  for (FactId f = 0; f < mo.num_facts(); ++f) {
    std::vector<std::string> row;
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      const Dimension& dim = *mo.dimension(static_cast<DimensionId>(d));
      ValueId v = mo.Coord(f, static_cast<DimensionId>(d));
      row.push_back(dim.type().category_name(dim.value_category(v)));
      row.push_back(dim.value_name(v));
    }
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      row.push_back(std::to_string(mo.Measure(f, static_cast<MeasureId>(m))));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

Status ReadFactCsv(MultidimensionalObject* mo, std::string_view csv_text) {
  DWRED_ASSIGN_OR_RETURN(auto rows, ParseCsv(csv_text));
  if (rows.empty()) return Status::InvalidArgument("fact CSV has no header");
  const size_t ndims = mo->num_dimensions();
  const size_t nmeas = mo->num_measures();
  const size_t expected = 2 * ndims + nmeas;
  if (rows[0].size() != expected) {
    return Status::InvalidArgument(
        "fact CSV header has " + std::to_string(rows[0].size()) +
        " columns, expected " + std::to_string(expected));
  }

  std::vector<ValueId> coords(ndims);
  std::vector<int64_t> meas(nmeas);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != expected) {
      return Status::InvalidArgument("fact CSV row " + std::to_string(r) +
                                     " has the wrong number of fields");
    }
    for (size_t d = 0; d < ndims; ++d) {
      Dimension& dim = *mo->dimension(static_cast<DimensionId>(d));
      const std::string& cat_name = row[2 * d];
      const std::string& val_name = row[2 * d + 1];
      DWRED_ASSIGN_OR_RETURN(CategoryId cat,
                             dim.type().CategoryByName(cat_name));
      auto v = dim.ValueByName(cat, val_name);
      if (v.ok()) {
        coords[d] = v.value();
      } else if (dim.is_time()) {
        DWRED_ASSIGN_OR_RETURN(TimeGranule g, ParseGranule(val_name));
        if (static_cast<CategoryId>(g.unit) != cat) {
          return Status::InvalidArgument(
              "row " + std::to_string(r) + ": time value '" + val_name +
              "' is not of category " + cat_name);
        }
        DWRED_ASSIGN_OR_RETURN(coords[d], dim.EnsureTimeValue(g));
      } else {
        return Status::NotFound("row " + std::to_string(r) +
                                ": unknown value '" + val_name +
                                "' in category " + cat_name);
      }
    }
    for (size_t m = 0; m < nmeas; ++m) {
      int64_t value;
      if (!ParseInt64(row[2 * ndims + m], &value)) {
        return Status::InvalidArgument("row " + std::to_string(r) +
                                       ": bad measure value '" +
                                       row[2 * ndims + m] + "'");
      }
      meas[m] = value;
    }
    auto added = mo->AddFact(coords, meas);
    if (!added.ok()) return added.status();
  }
  return Status::OK();
}

Result<std::vector<Action>> ReadSpecificationText(
    const MultidimensionalObject& mo, std::string_view text) {
  std::vector<Action> actions;
  for (const std::string& raw : Split(text, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    // Optional "name:" prefix (simple identifier only, so URLs and
    // granularity lists are never mistaken for names).
    std::string name;
    size_t colon = line.find(':');
    if (colon != std::string_view::npos && colon > 0) {
      bool ident = true;
      for (char ch : line.substr(0, colon)) {
        if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_') {
          ident = false;
          break;
        }
      }
      if (ident) {
        name = std::string(line.substr(0, colon));
        line = Trim(line.substr(colon + 1));
      }
    }
    DWRED_ASSIGN_OR_RETURN(Action a, ParseAction(mo, line, name));
    actions.push_back(std::move(a));
  }
  return actions;
}

}  // namespace dwred
