#include "io/snapshot.h"

#include <cstring>

#include "io/atomic_file.h"
#include "spec/parser.h"

namespace dwred {

namespace {

constexpr char kMagic[4] = {'D', 'W', 'R', 'D'};
// Version 2 appends a CRC32 trailer over the whole image, so bit rot and
// truncation are reported as such instead of surfacing as arbitrary
// structural diagnostics mid-parse.
constexpr uint32_t kVersion = 2;

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  std::string Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U32(uint32_t* v) { return Raw(v, 4); }
  Status U64(uint64_t* v) { return Raw(v, 8); }
  Status I64(int64_t* v) { return Raw(v, 8); }
  Status Str(std::string* s) {
    uint32_t n;
    DWRED_RETURN_IF_ERROR(U32(&n));
    if (pos_ + n > data_.size()) return Truncated();
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Raw(void* p, size_t n) {
    if (pos_ + n > data_.size()) return Truncated();
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status Truncated() const {
    return Status::ParseError("snapshot truncated at offset " +
                              std::to_string(pos_));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

void SaveDimension(Writer* w, const Dimension& dim) {
  const DimensionType& type = dim.type();
  w->Str(type.name());
  w->U8(dim.is_time() ? 1 : 0);
  w->U32(static_cast<uint32_t>(type.num_categories()));
  for (CategoryId c = 0; c < type.num_categories(); ++c) {
    w->Str(type.category_name(c));
  }
  // Edges (immediate ancestors).
  uint32_t nedges = 0;
  for (CategoryId c = 0; c < type.num_categories(); ++c) {
    nedges += static_cast<uint32_t>(type.Anc(c).size());
  }
  w->U32(nedges);
  for (CategoryId c = 0; c < type.num_categories(); ++c) {
    for (CategoryId p : type.Anc(c)) {
      w->U32(c);
      w->U32(p);
    }
  }
  // Values (skipping the constructor-created TOP value, id 0).
  w->U64(dim.num_values());
  for (ValueId v = 1; v < dim.num_values(); ++v) {
    w->Str(dim.value_name(v));
    w->U32(dim.value_category(v));
    const std::vector<ValueId>& parents = dim.Parents(v);
    w->U32(static_cast<uint32_t>(parents.size()));
    for (ValueId p : parents) w->U32(p);
    if (dim.is_time()) {
      TimeGranule g = dim.granule(v);
      w->U8(static_cast<uint8_t>(g.unit));
      w->I64(g.index);
    }
  }
}

Result<std::shared_ptr<Dimension>> LoadDimension(Reader* r) {
  std::string name;
  DWRED_RETURN_IF_ERROR(r->Str(&name));
  uint8_t is_time;
  DWRED_RETURN_IF_ERROR(r->U8(&is_time));
  uint32_t ncats;
  DWRED_RETURN_IF_ERROR(r->U32(&ncats));
  if (ncats > 64) return Status::ParseError("snapshot: too many categories");

  DimensionType type(name);
  for (uint32_t c = 0; c < ncats; ++c) {
    std::string cat_name;
    DWRED_RETURN_IF_ERROR(r->Str(&cat_name));
    type.AddCategory(std::move(cat_name));
  }
  uint32_t nedges;
  DWRED_RETURN_IF_ERROR(r->U32(&nedges));
  for (uint32_t e = 0; e < nedges; ++e) {
    uint32_t child, parent;
    DWRED_RETURN_IF_ERROR(r->U32(&child));
    DWRED_RETURN_IF_ERROR(r->U32(&parent));
    DWRED_RETURN_IF_ERROR(type.AddEdge(child, parent));
  }
  DWRED_RETURN_IF_ERROR(type.Finalize());

  auto dim = is_time
                 ? std::make_shared<Dimension>(Dimension::MakeTimeDimension())
                 : std::make_shared<Dimension>(std::move(type));
  if (is_time) {
    // The built-in time type must match the saved one structurally; the
    // saved categories were written from the same builder.
    if (dim->type().num_categories() != ncats) {
      return Status::ParseError("snapshot: time dimension layout mismatch");
    }
  }

  uint64_t nvalues;
  DWRED_RETURN_IF_ERROR(r->U64(&nvalues));
  for (uint64_t v = 1; v < nvalues; ++v) {
    std::string vname;
    DWRED_RETURN_IF_ERROR(r->Str(&vname));
    uint32_t cat;
    DWRED_RETURN_IF_ERROR(r->U32(&cat));
    uint32_t nparents;
    DWRED_RETURN_IF_ERROR(r->U32(&nparents));
    // One parent per immediate-ancestor category; a count past the category
    // cap is corruption, and allocating it blindly would let a 4-byte flip
    // demand gigabytes.
    if (nparents > 64 || nparents > r->remaining() / 4) {
      return Status::ParseError("snapshot: implausible parent count");
    }
    std::vector<ValueId> parents(nparents);
    for (uint32_t p = 0; p < nparents; ++p) {
      DWRED_RETURN_IF_ERROR(r->U32(&parents[p]));
      if (parents[p] >= v) {
        return Status::ParseError("snapshot: forward parent reference");
      }
    }
    TimeGranule g;
    if (is_time) {
      uint8_t unit;
      DWRED_RETURN_IF_ERROR(r->U8(&unit));
      if (unit > static_cast<uint8_t>(TimeUnit::kTop)) {
        return Status::ParseError("snapshot: bad time unit");
      }
      g.unit = static_cast<TimeUnit>(unit);
      DWRED_RETURN_IF_ERROR(r->I64(&g.index));
    }
    DWRED_ASSIGN_OR_RETURN(
        ValueId id,
        dim->RestoreValue(std::move(vname), cat, parents,
                          is_time ? &g : nullptr));
    if (id != v) return Status::ParseError("snapshot: value id drift");
  }
  return dim;
}

}  // namespace

std::string SaveWarehouse(const MultidimensionalObject& mo,
                          const ReductionSpecification& spec) {
  Writer w;
  w.U8(kMagic[0]);
  w.U8(kMagic[1]);
  w.U8(kMagic[2]);
  w.U8(kMagic[3]);
  w.U32(kVersion);
  w.Str(mo.fact_type());

  w.U32(static_cast<uint32_t>(mo.num_dimensions()));
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    SaveDimension(&w, *mo.dimension(static_cast<DimensionId>(d)));
  }

  w.U32(static_cast<uint32_t>(mo.num_measures()));
  for (size_t m = 0; m < mo.num_measures(); ++m) {
    const MeasureType& mt = mo.measure_type(static_cast<MeasureId>(m));
    w.Str(mt.name);
    w.U8(static_cast<uint8_t>(mt.agg));
  }

  w.U64(mo.num_facts());
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    for (size_t d = 0; d < mo.num_dimensions(); ++d) {
      w.U32(mo.Coord(f, static_cast<DimensionId>(d)));
    }
    for (size_t m = 0; m < mo.num_measures(); ++m) {
      w.I64(mo.Measure(f, static_cast<MeasureId>(m)));
    }
    w.Str(mo.FactName(f));
    const std::vector<FactId>* prov = mo.Provenance(f);
    w.U32(prov ? static_cast<uint32_t>(prov->size()) : 0);
    if (prov) {
      for (FactId s : *prov) w.U64(s);
    }
    w.U32(mo.ResponsibleAction(f));
  }

  w.U32(static_cast<uint32_t>(spec.size()));
  for (const Action& a : spec.actions()) {
    w.Str(a.name);
    w.Str(a.source_text);
  }
  std::string out = w.Take();
  uint32_t crc = Crc32(out);
  out.append(reinterpret_cast<const char*>(&crc), 4);
  return out;
}

Result<LoadedWarehouse> LoadWarehouse(std::string_view bytes) {
  // Magic + version + CRC trailer is the minimum wrapper.
  if (bytes.size() < 12) {
    return Status::ParseError("snapshot truncated (no room for header + CRC)");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::ParseError("not a dwred snapshot (bad magic)");
  }
  // Version is diagnosed before the checksum so a genuinely newer format is
  // reported as such rather than as corruption.
  uint32_t version_peek;
  std::memcpy(&version_peek, bytes.data() + 4, 4);
  if (version_peek != kVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version_peek));
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(bytes.substr(0, bytes.size() - 4)) != stored_crc) {
    return Status::ParseError("snapshot CRC mismatch (truncated or corrupt)");
  }
  Reader r(bytes.substr(0, bytes.size() - 4));
  char magic[4];
  for (char& c : magic) {
    uint8_t b;
    DWRED_RETURN_IF_ERROR(r.U8(&b));
    c = static_cast<char>(b);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::ParseError("not a dwred snapshot (bad magic)");
  }
  uint32_t version;
  DWRED_RETURN_IF_ERROR(r.U32(&version));
  if (version != kVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version));
  }
  std::string fact_type;
  DWRED_RETURN_IF_ERROR(r.Str(&fact_type));

  uint32_t ndims;
  DWRED_RETURN_IF_ERROR(r.U32(&ndims));
  if (ndims == 0 || ndims > 16) {
    return Status::ParseError("snapshot: implausible dimension count");
  }
  std::vector<std::shared_ptr<Dimension>> dims;
  for (uint32_t d = 0; d < ndims; ++d) {
    DWRED_ASSIGN_OR_RETURN(auto dim, LoadDimension(&r));
    dims.push_back(std::move(dim));
  }

  uint32_t nmeas;
  DWRED_RETURN_IF_ERROR(r.U32(&nmeas));
  if (nmeas > 64) return Status::ParseError("snapshot: too many measures");
  std::vector<MeasureType> measures;
  for (uint32_t m = 0; m < nmeas; ++m) {
    MeasureType mt;
    DWRED_RETURN_IF_ERROR(r.Str(&mt.name));
    uint8_t agg;
    DWRED_RETURN_IF_ERROR(r.U8(&agg));
    if (agg > static_cast<uint8_t>(AggFn::kMax)) {
      return Status::ParseError("snapshot: bad aggregate function");
    }
    mt.agg = static_cast<AggFn>(agg);
    measures.push_back(std::move(mt));
  }

  LoadedWarehouse out;
  out.mo = std::make_unique<MultidimensionalObject>(fact_type, dims, measures);

  uint64_t nfacts;
  DWRED_RETURN_IF_ERROR(r.U64(&nfacts));
  std::vector<ValueId> coords(ndims);
  std::vector<int64_t> meas(nmeas);
  for (uint64_t f = 0; f < nfacts; ++f) {
    for (uint32_t d = 0; d < ndims; ++d) {
      DWRED_RETURN_IF_ERROR(r.U32(&coords[d]));
    }
    for (uint32_t m = 0; m < nmeas; ++m) {
      DWRED_RETURN_IF_ERROR(r.I64(&meas[m]));
    }
    DWRED_ASSIGN_OR_RETURN(FactId id, out.mo->AddFact(coords, meas));
    std::string fname;
    DWRED_RETURN_IF_ERROR(r.Str(&fname));
    if (fname != "fact_" + std::to_string(id)) {
      out.mo->SetFactName(id, std::move(fname));
    }
    uint32_t nprov;
    DWRED_RETURN_IF_ERROR(r.U32(&nprov));
    // Each provenance entry costs 8 bytes in the image; a count the
    // remaining bytes cannot hold is corruption, not a big allocation.
    if (nprov > r.remaining() / 8) {
      return Status::ParseError("snapshot: provenance list exceeds image");
    }
    std::vector<FactId> prov(nprov);
    for (uint32_t p = 0; p < nprov; ++p) {
      DWRED_RETURN_IF_ERROR(r.U64(&prov[p]));
    }
    uint32_t responsible;
    DWRED_RETURN_IF_ERROR(r.U32(&responsible));
    if (nprov > 0 || responsible != kNoAction) {
      out.mo->SetProvenance(id, std::move(prov), responsible);
    }
  }

  uint32_t nactions;
  DWRED_RETURN_IF_ERROR(r.U32(&nactions));
  for (uint32_t a = 0; a < nactions; ++a) {
    std::string name, text;
    DWRED_RETURN_IF_ERROR(r.Str(&name));
    DWRED_RETURN_IF_ERROR(r.Str(&text));
    DWRED_ASSIGN_OR_RETURN(Action action,
                           ParseAction(*out.mo, text, std::move(name)));
    out.spec.Add(std::move(action));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("snapshot has trailing bytes");
  }
  return out;
}

}  // namespace dwred
