#include "io/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/atomic_file.h"
#include "io/wire.h"
#include "obs/metrics.h"
#include "runtime/retry.h"
#include "testing/fault.h"

namespace dwred {

namespace {

using wire::PutI64;
using wire::PutStr;
using wire::PutU32;
using wire::PutU64;
using wire::PutU8;

/// A single journal record may not exceed this (a valid-checksum record
/// claiming more is version skew or a bug, not a torn write).
constexpr uint32_t kMaxRecordBytes = 1u << 30;

std::string EncodePayload(const JournalRecord& rec) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(rec.type));
  if (rec.type == JournalRecord::Type::kIntent) {
    const IntentRecord& in = rec.intent;
    PutU64(&p, in.lsn);
    PutU8(&p, static_cast<uint8_t>(in.op.kind));
    PutI64(&p, in.op.now_day);
    PutU64(&p, in.pre_rows);
    PutU32(&p, static_cast<uint32_t>(in.pre_counts.size()));
    for (uint64_t c : in.pre_counts) PutU64(&p, c);
    PutU64(&p, in.affected_count);
    PutU64(&p, in.affected_digest);
    PutStr(&p, in.op.aux);
  } else {
    PutU64(&p, rec.commit.lsn);
    PutU64(&p, rec.commit.post_rows);
  }
  return p;
}

Result<JournalRecord> DecodePayload(std::string_view payload) {
  wire::Cursor c(payload, "journal");
  uint8_t type;
  DWRED_RETURN_IF_ERROR(c.U8(&type));
  JournalRecord rec;
  if (type == static_cast<uint8_t>(JournalRecord::Type::kIntent)) {
    rec.type = JournalRecord::Type::kIntent;
    IntentRecord& in = rec.intent;
    DWRED_RETURN_IF_ERROR(c.U64(&in.lsn));
    uint8_t kind;
    DWRED_RETURN_IF_ERROR(c.U8(&kind));
    if (kind < static_cast<uint8_t>(JournalOpKind::kInsertFacts) ||
        kind > static_cast<uint8_t>(JournalOpKind::kSetSpec)) {
      return Status::ParseError("journal: unknown operation kind " +
                                std::to_string(kind));
    }
    in.op.kind = static_cast<JournalOpKind>(kind);
    DWRED_RETURN_IF_ERROR(c.I64(&in.op.now_day));
    DWRED_RETURN_IF_ERROR(c.U64(&in.pre_rows));
    uint32_t n;
    DWRED_RETURN_IF_ERROR(c.U32(&n));
    if (n > c.remaining() / 8) {
      return Status::ParseError("journal: pre-count list exceeds record");
    }
    in.pre_counts.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      DWRED_RETURN_IF_ERROR(c.U64(&in.pre_counts[i]));
    }
    DWRED_RETURN_IF_ERROR(c.U64(&in.affected_count));
    DWRED_RETURN_IF_ERROR(c.U64(&in.affected_digest));
    DWRED_RETURN_IF_ERROR(c.Str(&in.op.aux));
  } else if (type == static_cast<uint8_t>(JournalRecord::Type::kCommit)) {
    rec.type = JournalRecord::Type::kCommit;
    DWRED_RETURN_IF_ERROR(c.U64(&rec.commit.lsn));
    DWRED_RETURN_IF_ERROR(c.U64(&rec.commit.post_rows));
  } else {
    return Status::ParseError("journal: unknown record type " +
                              std::to_string(type));
  }
  if (!c.AtEnd()) {
    return Status::ParseError("journal: trailing bytes inside record");
  }
  return rec;
}

obs::Counter& RecordsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_journal_records_appended",
      "intent + commit records appended to the write-ahead journal");
  return c;
}

obs::Counter& BytesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dwred_journal_bytes_appended",
      "bytes appended to the write-ahead journal (framing included)");
  return c;
}

}  // namespace

std::string EncodeJournalRecord(const JournalRecord& rec) {
  std::string payload = EncodePayload(rec);
  std::string framed;
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  PutU32(&framed, Crc32(payload));
  framed += payload;
  return framed;
}

Result<JournalScan> ScanJournal(std::string_view bytes) {
  JournalScan scan;
  size_t pos = 0;
  while (pos < bytes.size()) {
    // Frame header. Anything that smells like a torn write ends the scan;
    // the bytes from here on are the discarded tail.
    if (bytes.size() - pos < 8) break;
    uint32_t len, crc;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (len > kMaxRecordBytes || len > bytes.size() - pos - 8) break;
    std::string_view payload = bytes.substr(pos + 8, len);
    if (Crc32(payload) != crc) break;

    DWRED_ASSIGN_OR_RETURN(JournalRecord rec, DecodePayload(payload));
    ++scan.records;
    if (rec.type == JournalRecord::Type::kIntent) {
      // A new intent supersedes any pending one: the prior intent never
      // committed and was rolled back by recovery before this append.
      if (scan.has_pending_intent) ++scan.superseded_intents;
      scan.has_pending_intent = true;
      scan.pending_intent = std::move(rec.intent);
    } else {
      if (!scan.has_pending_intent ||
          scan.pending_intent.lsn != rec.commit.lsn) {
        return Status::ParseError(
            "journal: commit record " + std::to_string(rec.commit.lsn) +
            " has no matching intent");
      }
      scan.committed.push_back(
          CommittedOp{std::move(scan.pending_intent), rec.commit});
      scan.has_pending_intent = false;
    }
    pos += 8 + len;
  }
  scan.torn_bytes = bytes.size() - pos;
  return scan;
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this == &other) return *this;
  Close();
  path_ = std::move(other.path_);
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}

Journal::~Journal() { Close(); }

void Journal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Journal> Journal::Open(const std::string& path) {
  Journal j;
  j.path_ = path;
  j.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (j.fd_ < 0) {
    return Status::InvalidArgument("cannot open journal " + path + ": " +
                                   std::strerror(errno));
  }
  return j;
}

Status Journal::Append(const JournalRecord& rec, const char* write_site,
                       const char* fsync_site) {
  if (fd_ < 0) return Status::Internal("journal is not open");
  DWRED_RETURN_IF_ERROR(testing::FaultPoint(write_site));
  std::string framed = EncodeJournalRecord(rec);
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("journal write failed: " +
                              std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  DWRED_RETURN_IF_ERROR(testing::FaultPoint(fsync_site));
  // Fsync is idempotent, so a transient failure (EINTR-class, momentary
  // ENOSPC) is retried with backoff before giving up. The framed write loop
  // above is deliberately NOT retried: re-running it after a partial write
  // would duplicate bytes and corrupt the framing.
  DWRED_RETURN_IF_ERROR(runtime::RetryWithBackoff(
      runtime::RetryPolicy{}, [&] { return FsyncFd(fd_, path_); },
      "journal fsync"));
  RecordsCounter().Increment();
  BytesCounter().Increment(framed.size());
  return Status::OK();
}

Status Journal::AppendIntent(const IntentRecord& rec) {
  JournalRecord r;
  r.type = JournalRecord::Type::kIntent;
  r.intent = rec;
  return Append(r, "journal.intent.write", "journal.intent.fsync");
}

Status Journal::AppendCommit(const CommitRecord& rec) {
  JournalRecord r;
  r.type = JournalRecord::Type::kCommit;
  r.commit = rec;
  return Append(r, "journal.commit.write", "journal.commit.fsync");
}

Status Journal::Reset() {
  if (fd_ < 0) return Status::Internal("journal is not open");
  DWRED_RETURN_IF_ERROR(testing::FaultPoint("journal.reset"));
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal("journal truncate failed: " +
                            std::string(std::strerror(errno)));
  }
  DWRED_RETURN_IF_ERROR(runtime::RetryWithBackoff(
      runtime::RetryPolicy{}, [&] { return FsyncFd(fd_, path_); },
      "journal reset fsync"));
  static obs::Counter& c_resets = obs::MetricsRegistry::Global().GetCounter(
      "dwred_journal_resets",
      "journal truncations after a successful snapshot checkpoint");
  c_resets.Increment();
  return Status::OK();
}

}  // namespace dwred
