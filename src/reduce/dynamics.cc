#include "reduce/dynamics.h"

#include <algorithm>

namespace dwred {

Result<ReductionSpecification> InsertActions(
    const MultidimensionalObject& mo, const ReductionSpecification& spec,
    std::vector<Action> new_actions, const ProverOptions& opts) {
  ReductionSpecification merged = spec;
  for (Action& a : new_actions) merged.Add(std::move(a));
  DWRED_RETURN_IF_ERROR(ValidateSpecification(mo, merged, opts));
  return merged;
}

Result<ReductionSpecification> DeleteActions(
    const MultidimensionalObject& mo, const ReductionSpecification& spec,
    const std::vector<ActionId>& ids, int64_t now_day,
    const ProverOptions& opts) {
  std::vector<bool> deleted(spec.size(), false);
  for (ActionId id : ids) {
    if (id >= spec.size()) {
      return Status::InvalidArgument("unknown action id " + std::to_string(id));
    }
    deleted[id] = true;
  }

  // No-current-effect test (Definition 4): for every deleted action a' and
  // every fact whose direct cell satisfies Pred(a', t), either the fact is
  // already strictly above Cat(a'), or a remaining action of equal
  // granularity also covers the cell.
  for (ActionId id = 0; id < spec.size(); ++id) {
    if (!deleted[id]) continue;
    const Action& a = spec.action(id);
    for (FactId f = 0; f < mo.num_facts(); ++f) {
      if (!EvalPredOnFact(*a.predicate, mo, f, now_day)) continue;
      std::vector<CategoryId> gran = mo.Gran(f);
      bool strictly_below = !a.deletes &&
          GranularityLeq(mo, a.granularity, gran) && a.granularity != gran;
      if (strictly_below) continue;
      bool covered = false;
      for (ActionId j = 0; j < spec.size(); ++j) {
        if (deleted[j]) continue;
        const Action& b = spec.action(j);
        if (b.granularity == a.granularity && b.deletes == a.deletes &&
            EvalPredOnFact(*b.predicate, mo, f, now_day)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        std::string who = a.name.empty() ? a.ToString(mo) : a.name;
        return Status::DeleteRejected(
            "action '" + who + "' is still responsible for " + mo.FactName(f) +
            " and no remaining action of equal granularity covers it");
      }
    }
  }

  ReductionSpecification remaining;
  for (ActionId id = 0; id < spec.size(); ++id) {
    if (!deleted[id]) remaining.Add(spec.action(id));
  }
  DWRED_RETURN_IF_ERROR(ValidateSpecification(mo, remaining, opts));
  return remaining;
}

}  // namespace dwred
