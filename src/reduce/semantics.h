#pragma once

// Reduction semantics (paper Section 4.2 auxiliaries and Definition 2): at a
// time t, every fact is assigned the maximum granularity specified for it
// (Spec_gran / Max_<=p), mapped to the cell of dimension values at that
// granularity (Cell), grouped with the other facts of the same cell, and the
// groups' measures folded with the measures' default (distributive) aggregate
// functions. The detail facts are physically deleted — the reduced MO is a
// new fact set over the same schema and dimensions.

#include "spec/action.h"

namespace dwred {

/// The paper's Spec_gran + Max_<=p: the maximum of the fact's own granularity
/// and the granularities of every action whose predicate the fact's direct
/// cell satisfies at `now_day`. Also reports which action supplied the
/// maximum (kNoAction when the fact's own granularity wins) and, via
/// `deleted`, whether a satisfied *deletion* action dominates (the Section 8
/// extension; deletion sits above every granularity).
/// Fails (Internal) if the satisfied granularities are not totally ordered —
/// impossible for specifications that passed the NonCrossing check.
Result<std::vector<CategoryId>> MaxSpecGran(const MultidimensionalObject& mo,
                                            const ReductionSpecification& spec,
                                            FactId f, int64_t now_day,
                                            ActionId* responsible = nullptr,
                                            bool* deleted = nullptr);

/// The paper's Cell(f, t): the tuple of dimension values, at MaxSpecGran's
/// granularity, that the fact will be aggregated to.
Result<std::vector<ValueId>> CellOf(const MultidimensionalObject& mo,
                                    const ReductionSpecification& spec,
                                    FactId f, int64_t now_day);

/// The paper's AggLevel_i (eq. (13)): the maximum aggregation level specified
/// in dimension `dim` for a given cell at `now_day` (bottom when no action
/// covers the cell).
Result<CategoryId> AggLevel(const MultidimensionalObject& mo,
                            const ReductionSpecification& spec,
                            DimensionId dim, std::span<const ValueId> cell,
                            int64_t now_day);

/// Statistics of one reduction pass.
struct ReduceStats {
  size_t input_facts = 0;
  size_t output_facts = 0;
  size_t facts_aggregated = 0;  ///< inputs whose granularity changed
  size_t facts_deleted = 0;     ///< inputs removed by deletion actions
};

/// Reduction options.
struct ReduceOptions {
  /// Assign merged facts names derived from their original constituents
  /// ("fact_03" for the merge of fact_0 and fact_3, as in the paper's
  /// figures) and record provenance + responsible action. Disable for bulk
  /// benchmarks.
  bool track_provenance = true;
};

/// Definition 2: the reduced MO at `now_day`. Shares schema and dimensions
/// with the input.
Result<MultidimensionalObject> Reduce(const MultidimensionalObject& mo,
                                      const ReductionSpecification& spec,
                                      int64_t now_day,
                                      const ReduceOptions& options = {},
                                      ReduceStats* stats = nullptr);

}  // namespace dwred
