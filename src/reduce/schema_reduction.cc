#include "reduce/schema_reduction.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "scan/scan.h"
#include "storage/fact_table.h"
#include "vm/program.h"

namespace dwred {

Result<MultidimensionalObject> DropDimension(const MultidimensionalObject& mo,
                                             DimensionId dim) {
  if (dim >= mo.num_dimensions()) {
    return Status::InvalidArgument("unknown dimension");
  }
  if (mo.num_dimensions() == 1) {
    return Status::InvalidArgument("cannot drop the last dimension");
  }
  std::vector<std::shared_ptr<Dimension>> kept;
  std::vector<DimensionId> kept_ids;
  for (DimensionId d = 0; d < mo.num_dimensions(); ++d) {
    if (d == dim) continue;
    kept.push_back(mo.dimension(d));
    kept_ids.push_back(d);
  }
  MultidimensionalObject out(mo.fact_type(), std::move(kept),
                             mo.measure_types());

  struct Group {
    FactId out_id;
    std::vector<FactId> sources;
  };
  std::unordered_map<std::vector<ValueId>, Group, CellKeyHash> groups;
  const size_t nmeas = mo.num_measures();
  std::vector<ValueId> cell(kept_ids.size());
  std::vector<int64_t> meas(nmeas);
  // Measure fold precompiled once for the pass (same CombineMeasure calls).
  const vm::FoldProgram fold = vm::FoldProgram::Compile(mo.measure_types());
  // Grouping is first-occurrence ordered, so the scan units are walked
  // serially in ascending order (scan::Execute would race the out-MO).
  scan::ScanPlan plan = scan::PlanMoScan(mo.num_facts(), /*grain=*/1024);
  for (const exec::Shard& u : plan.units)
  for (FactId f = u.begin; f < u.end; ++f) {
    for (size_t d = 0; d < kept_ids.size(); ++d) {
      cell[d] = mo.Coord(f, kept_ids[d]);
    }
    auto it = groups.find(cell);
    if (it == groups.end()) {
      for (size_t m = 0; m < nmeas; ++m) {
        meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
      }
      DWRED_ASSIGN_OR_RETURN(FactId nf, out.AddFact(cell, meas));
      Group g;
      g.out_id = nf;
      if (const std::vector<FactId>* prov = mo.Provenance(f)) {
        g.sources = *prov;
      } else {
        g.sources = {f};
      }
      groups.emplace(cell, std::move(g));
    } else {
      Group& g = it->second;
      fold.Fold(out.MutableFactMeasures(g.out_id).data(),
                mo.FactMeasures(f).data());
      if (const std::vector<FactId>* prov = mo.Provenance(f)) {
        g.sources.insert(g.sources.end(), prov->begin(), prov->end());
      } else {
        g.sources.push_back(f);
      }
    }
  }
  for (auto& [key, g] : groups) {
    std::sort(g.sources.begin(), g.sources.end());
    g.sources.erase(std::unique(g.sources.begin(), g.sources.end()),
                    g.sources.end());
    out.SetProvenance(g.out_id, g.sources, kNoAction);
  }
  return out;
}

Result<MultidimensionalObject> DropMeasure(const MultidimensionalObject& mo,
                                           MeasureId m) {
  if (m >= mo.num_measures()) {
    return Status::InvalidArgument("unknown measure");
  }
  std::vector<MeasureType> kept_types;
  std::vector<MeasureId> kept_ids;
  for (MeasureId i = 0; i < mo.num_measures(); ++i) {
    if (i == m) continue;
    kept_types.push_back(mo.measure_type(i));
    kept_ids.push_back(i);
  }
  MultidimensionalObject out(mo.fact_type(), mo.dimensions(),
                             std::move(kept_types));
  std::vector<ValueId> coords(mo.num_dimensions());
  std::vector<int64_t> meas(kept_ids.size());
  scan::ScanPlan plan = scan::PlanMoScan(mo.num_facts(), /*grain=*/1024);
  for (const exec::Shard& u : plan.units)
  for (FactId f = u.begin; f < u.end; ++f) {
    for (size_t d = 0; d < coords.size(); ++d) {
      coords[d] = mo.Coord(f, static_cast<DimensionId>(d));
    }
    for (size_t i = 0; i < kept_ids.size(); ++i) {
      meas[i] = mo.Measure(f, kept_ids[i]);
    }
    DWRED_ASSIGN_OR_RETURN(FactId nf, out.AddFact(coords, meas));
    out.SetFactName(nf, mo.FactName(f));
    if (const std::vector<FactId>* prov = mo.Provenance(f)) {
      out.SetProvenance(nf, *prov, mo.ResponsibleAction(f));
    }
  }
  return out;
}

Result<MultidimensionalObject> RaiseBottomCategory(
    const MultidimensionalObject& mo, DimensionId dim, CategoryId new_bottom) {
  if (dim >= mo.num_dimensions()) {
    return Status::InvalidArgument("unknown dimension");
  }
  const Dimension& old_dim = *mo.dimension(dim);
  const DimensionType& type = old_dim.type();
  if (new_bottom >= type.num_categories()) {
    return Status::InvalidArgument("unknown category");
  }

  // Facts must already be at or above the new bottom.
  for (FactId f = 0; f < mo.num_facts(); ++f) {
    CategoryId c = old_dim.value_category(mo.Coord(f, dim));
    if (!type.Leq(new_bottom, c)) {
      return Status::InvalidArgument(
          mo.FactName(f) + " still maps to category " +
          type.category_name(c) + ", below the new bottom " +
          type.category_name(new_bottom) + " — reduce the MO first");
    }
  }

  // Keep every category at or above the new bottom.
  std::vector<CategoryId> keep;
  for (CategoryId c = 0; c < type.num_categories(); ++c) {
    if (type.Leq(new_bottom, c)) keep.push_back(c);
  }
  std::vector<ValueId> value_map;
  DWRED_ASSIGN_OR_RETURN(Dimension sub, old_dim.Subdimension(keep, &value_map));

  std::vector<std::shared_ptr<Dimension>> dims = mo.dimensions();
  dims[dim] = std::make_shared<Dimension>(std::move(sub));

  MultidimensionalObject out(mo.fact_type(), std::move(dims),
                             mo.measure_types());
  std::vector<ValueId> coords(mo.num_dimensions());
  std::vector<int64_t> meas(mo.num_measures());
  scan::ScanPlan plan = scan::PlanMoScan(mo.num_facts(), /*grain=*/1024);
  for (const exec::Shard& u : plan.units)
  for (FactId f = u.begin; f < u.end; ++f) {
    for (size_t d = 0; d < coords.size(); ++d) {
      coords[d] = mo.Coord(f, static_cast<DimensionId>(d));
    }
    coords[dim] = value_map[coords[dim]];
    DWRED_CHECK(coords[dim] != kInvalidValue);
    for (size_t m = 0; m < meas.size(); ++m) {
      meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
    }
    DWRED_ASSIGN_OR_RETURN(FactId nf, out.AddFact(coords, meas));
    out.SetFactName(nf, mo.FactName(f));
    if (const std::vector<FactId>* prov = mo.Provenance(f)) {
      out.SetProvenance(nf, *prov, mo.ResponsibleAction(f));
    }
  }
  return out;
}

}  // namespace dwred
