#pragma once

// Dynamics of data reduction specifications (paper Section 5): inserting and
// deleting actions while preserving consistency.
//
//  * insert (Definition 3) depends on the action set only: the union must
//    stay Growing and NonCrossing, otherwise the original specification is
//    left unchanged and a diagnostic is returned.
//  * delete (Definition 4) additionally depends on the facts currently in
//    the MO: a deleted action must have no current effect — every fact whose
//    direct cell satisfies its predicate must either already sit strictly
//    above the action's granularity, or be covered by a remaining action of
//    equal granularity. All-or-nothing: either every requested action is
//    deletable or none is removed.

#include "reduce/soundness.h"

namespace dwred {

/// Definition 3. On success returns the new specification (spec ∪ actions);
/// on failure returns the violation and leaves the input untouched.
Result<ReductionSpecification> InsertActions(
    const MultidimensionalObject& mo, const ReductionSpecification& spec,
    std::vector<Action> new_actions, const ProverOptions& opts = {});

/// Definition 4. `now_day` is the deletion time t; `mo` supplies the current
/// facts for the no-current-effect test.
Result<ReductionSpecification> DeleteActions(
    const MultidimensionalObject& mo, const ReductionSpecification& spec,
    const std::vector<ActionId>& ids, int64_t now_day,
    const ProverOptions& opts = {});

}  // namespace dwred
