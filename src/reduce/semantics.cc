#include "reduce/semantics.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/cancel.h"
#include "scan/scan.h"
#include "storage/column.h"
#include "storage/fact_table.h"
#include "vm/program.h"

namespace dwred {

namespace {

using ActionPrograms = std::vector<std::shared_ptr<const vm::PredProgram>>;

/// Per-action satisfaction test: the compiled 0/1 program when one is
/// available, the tree interpreter otherwise — byte-identical either way
/// (docs/COMPILATION.md). `w_pre` (when non-null) is this fact's
/// batch-precomputed program weight (vm::PredProgram::EvalBatch over a
/// column chunk); a kOutOfRange lane falls back exactly like per-row Eval.
bool ActionSatisfied(const Action& a, const vm::PredProgram* prog,
                     const MultidimensionalObject& mo, FactId f,
                     int64_t now_day, const double* w_pre = nullptr) {
  if (prog != nullptr) {
    const double w =
        w_pre != nullptr ? *w_pre : prog->Eval(mo.FactCoords(f).data());
    if (w != vm::PredProgram::kOutOfRange) return w != 0.0;
    vm::CountFallback();  // coordinate interned after compilation
  }
  return EvalPredOnFact(*a.predicate, mo, f, now_day);
}

Result<std::vector<CategoryId>> MaxSpecGranImpl(
    const MultidimensionalObject& mo, const ReductionSpecification& spec,
    FactId f, int64_t now_day, ActionId* responsible, bool* deleted,
    const ActionPrograms* progs, const double* action_w = nullptr) {
  if (deleted) *deleted = false;
  std::vector<CategoryId> fact_gran = mo.Gran(f);

  // Maximum over the satisfied actions (totally ordered for NonCrossing
  // specifications).
  const std::vector<CategoryId>* action_gran = nullptr;
  ActionId best_action = kNoAction;
  for (size_t i = 0; i < spec.size(); ++i) {
    const Action& a = spec.action(static_cast<ActionId>(i));
    const vm::PredProgram* prog =
        progs != nullptr && i < progs->size() ? (*progs)[i].get() : nullptr;
    const double* w_pre =
        action_w != nullptr && prog != nullptr ? &action_w[i] : nullptr;
    if (!ActionSatisfied(a, prog, mo, f, now_day, w_pre)) continue;
    if (a.deletes) {
      // Deletion dominates every aggregation level.
      if (deleted) *deleted = true;
      if (responsible) *responsible = static_cast<ActionId>(i);
      return fact_gran;
    }
    if (action_gran) {
      if (GranularityLeq(mo, a.granularity, *action_gran)) continue;
      if (!GranularityLeq(mo, *action_gran, a.granularity)) {
        return Status::Internal(
            "satisfied granularities are not totally ordered for " +
            mo.FactName(f) + " — specification violates NonCrossing");
      }
    }
    action_gran = &a.granularity;
    best_action = static_cast<ActionId>(i);
  }
  if (responsible) *responsible = best_action;
  if (!action_gran) return fact_gran;

  // Combine with the fact's own granularity per dimension (Spec_gran always
  // contains Gran(f)). Tuple comparison suffices for bottom-level facts; the
  // per-dimension LUB generalizes it to facts mapped to ⊤ in some dimension
  // ("unknown value"): that dimension stays at ⊤ while the others aggregate.
  std::vector<CategoryId> best(fact_gran.size());
  bool higher_than_fact = false;
  for (size_t d = 0; d < fact_gran.size(); ++d) {
    const DimensionType& type = mo.dimension(static_cast<DimensionId>(d))->type();
    best[d] = type.Lub(fact_gran[d], (*action_gran)[d]);
    if (best[d] != fact_gran[d]) higher_than_fact = true;
  }
  if (!higher_than_fact && responsible) {
    // The action does not lift the fact anywhere: the fact's own granularity
    // wins (the action may still be the one historically responsible).
    *responsible = best_action;
  }
  return best;
}

/// One compiled program per action, or an empty vector while the VM is
/// disabled (null slots for predicates the compiler rejects).
ActionPrograms CompileActionPrograms(const MultidimensionalObject& mo,
                                     const ReductionSpecification& spec,
                                     int64_t now_day) {
  ActionPrograms progs;
  if (!vm::Enabled()) {
    vm::CountFallback();
    return progs;
  }
  progs.reserve(spec.size());
  const scan::AtomOracle oracle = vm::SpecAtomOracle(mo, now_day);
  for (size_t i = 0; i < spec.size(); ++i) {
    const Action& a = spec.action(static_cast<ActionId>(i));
    auto compiled = vm::PredProgram::Compile(mo, *a.predicate, oracle);
    progs.push_back(compiled
                        ? std::make_shared<const vm::PredProgram>(
                              std::move(*compiled))
                        : nullptr);
  }
  return progs;
}

}  // namespace

Result<std::vector<CategoryId>> MaxSpecGran(const MultidimensionalObject& mo,
                                            const ReductionSpecification& spec,
                                            FactId f, int64_t now_day,
                                            ActionId* responsible,
                                            bool* deleted) {
  return MaxSpecGranImpl(mo, spec, f, now_day, responsible, deleted, nullptr);
}

Result<std::vector<ValueId>> CellOf(const MultidimensionalObject& mo,
                                    const ReductionSpecification& spec,
                                    FactId f, int64_t now_day) {
  DWRED_ASSIGN_OR_RETURN(std::vector<CategoryId> gran,
                         MaxSpecGran(mo, spec, f, now_day));
  std::vector<ValueId> cell(mo.num_dimensions());
  for (size_t d = 0; d < mo.num_dimensions(); ++d) {
    auto dd = static_cast<DimensionId>(d);
    ValueId v = mo.dimension(dd)->Rollup(mo.Coord(f, dd), gran[d]);
    if (v == kInvalidValue) {
      return Status::Internal("no rollup of " +
                              mo.dimension(dd)->value_name(mo.Coord(f, dd)) +
                              " to the target granularity");
    }
    cell[d] = v;
  }
  return cell;
}

Result<CategoryId> AggLevel(const MultidimensionalObject& mo,
                            const ReductionSpecification& spec,
                            DimensionId dim, std::span<const ValueId> cell,
                            int64_t now_day) {
  const DimensionType& type = mo.dimension(dim)->type();
  CategoryId best = type.bottom();
  for (const Action& a : spec.actions()) {
    if (!EvalPredOnCell(*a.predicate, mo, cell, now_day)) continue;
    CategoryId c = a.granularity[dim];
    if (type.Leq(c, best)) continue;
    if (!type.Leq(best, c)) {
      return Status::Internal(
          "AggLevel: incomparable categories specified for one cell — "
          "specification violates NonCrossing");
    }
    best = c;
  }
  return best;
}

Result<MultidimensionalObject> Reduce(const MultidimensionalObject& mo,
                                      const ReductionSpecification& spec,
                                      int64_t now_day,
                                      const ReduceOptions& options,
                                      ReduceStats* stats) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& pass_latency = registry.GetHistogram(
      "dwred_reduce_pass_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one reduction pass (Definition 2)");
  obs::TraceSpan span("reduce.pass", &pass_latency);

  MultidimensionalObject out(mo.fact_type(), mo.dimensions(),
                             mo.measure_types());
  const size_t ndims = mo.num_dimensions();
  const size_t nmeas = mo.num_measures();

  struct Group {
    FactId out_id;
    std::vector<FactId> sources;   // original constituent ids
    ActionId responsible;
    bool aggregated;               // any input changed granularity
  };
  std::unordered_map<std::vector<ValueId>, Group, CellKeyHash> groups;

  // --- Parallel scan (docs/PARALLELISM.md) --------------------------------
  // Definition 2 assigns every fact to its cell independently, so the scan
  // shards over contiguous fact ranges. Each shard builds an
  // insertion-ordered local cell map with partial aggregates; the shards are
  // then merged in ascending range order, which reproduces the serial
  // first-occurrence order (output fact ids) and the serial measure fold
  // sequence (the default aggregate functions are associative), so the
  // output is byte-identical at every thread count.
  struct ShardGroup {
    std::vector<ValueId> cell;
    std::vector<int64_t> meas;      // folded over the shard's members
    std::vector<FactId> sources;    // raw; dedup/sort happens at naming time
    ActionId last_action_resp = kNoAction;  // last in-shard action responsible
    ActionId first_fallback = kNoAction;    // serial init value (first member)
    bool aggregated_if_first = false;       // changed(first) || members > 1
  };
  struct ShardAccum {
    std::vector<ShardGroup> ordered;  // first-occurrence order within shard
    std::unordered_map<std::vector<ValueId>, size_t, CellKeyHash> index;
    size_t facts_aggregated = 0;
    size_t facts_deleted = 0;
    Status error = Status::OK();  // first error; shard stops there
  };

  // The per-action predicate programs and the measure fold, compiled once
  // for the whole pass (src/vm) and shared read-only by every shard.
  const ActionPrograms action_progs = CompileActionPrograms(mo, spec, now_day);
  const ActionPrograms* progs = action_progs.empty() ? nullptr : &action_progs;
  const vm::FoldProgram fold = vm::FoldProgram::Compile(mo.measure_types());

  scan::ScanPlan plan = scan::PlanMoScan(mo.num_facts(), /*grain=*/1024);
  std::vector<ShardAccum> accums(plan.units.size());

  scan::Execute(plan, [&](size_t si, size_t begin, size_t end) {
    ShardAccum& acc = accums[si];
    // Cooperative abort point (runtime/cancel.h): polled once per shard, and
    // the shard's rows are charged against the operation's budget before any
    // of them are scanned. Reduce builds `out` fresh and the caller assigns
    // it only on success, so stopping here leaves no partial state anywhere.
    acc.error = runtime::PollCancel("cancel.reduce.shard");
    if (!acc.error.ok()) return;
    acc.error = runtime::CurrentOpContext().ChargeRows(
        static_cast<int64_t>(end - begin));
    if (!acc.error.ok()) return;
    std::vector<ValueId> cell(ndims);
    // Assigns one fact to its cell group; returns false when the shard must
    // stop (acc.error set). `action_w` optionally carries the fact's
    // batch-precomputed per-action program weights.
    auto process = [&](FactId f, const double* action_w) -> bool {
      ActionId responsible = kNoAction;
      bool deleted = false;
      auto gran_r = MaxSpecGranImpl(mo, spec, f, now_day, &responsible,
                                    &deleted, progs, action_w);
      if (!gran_r.ok()) {
        acc.error = gran_r.status();
        return false;
      }
      if (deleted) {
        // Deletion action (Section 8 extension): the fact is physically
        // removed — no cell, no group.
        ++acc.facts_deleted;
        return true;
      }
      const std::vector<CategoryId>& gran = gran_r.value();
      bool changed = false;
      for (size_t d = 0; d < ndims; ++d) {
        auto dd = static_cast<DimensionId>(d);
        ValueId direct = mo.Coord(f, dd);
        ValueId v = mo.dimension(dd)->Rollup(direct, gran[d]);
        if (v == kInvalidValue) {
          acc.error = Status::Internal(
              "no rollup to target granularity for " + mo.FactName(f));
          return false;
        }
        if (v != direct) changed = true;
        cell[d] = v;
      }
      if (changed) ++acc.facts_aggregated;

      auto it = acc.index.find(cell);
      if (it == acc.index.end()) {
        ShardGroup g;
        g.cell = cell;
        g.meas.resize(nmeas);
        for (size_t m = 0; m < nmeas; ++m) {
          g.meas[m] = mo.Measure(f, static_cast<MeasureId>(m));
        }
        g.first_fallback =
            responsible != kNoAction ? responsible : mo.ResponsibleAction(f);
        g.last_action_resp = responsible;
        g.aggregated_if_first = changed;
        if (options.track_provenance) {
          if (const std::vector<FactId>* prov = mo.Provenance(f)) {
            g.sources = *prov;
          } else {
            g.sources = {f};
          }
        }
        acc.index.emplace(cell, acc.ordered.size());
        acc.ordered.push_back(std::move(g));
      } else {
        ShardGroup& g = acc.ordered[it->second];
        // Fold measures with the default aggregate functions (Definition 2),
        // through the precompiled fold (same CombineMeasure calls).
        fold.Fold(g.meas.data(), mo.FactMeasures(f).data());
        g.aggregated_if_first = true;  // two members make the group aggregated
        if (responsible != kNoAction) g.last_action_resp = responsible;
        if (options.track_provenance) {
          if (const std::vector<FactId>* prov = mo.Provenance(f)) {
            g.sources.insert(g.sources.end(), prov->begin(), prov->end());
          } else {
            g.sources.push_back(f);
          }
        }
      }
      return true;
    };
    if (storage::ColumnarEnabled() && progs != nullptr && ndims > 0) {
      // Vectorized assignment: transpose row-major MO chunks into column
      // scratch, evaluate every compiled action predicate chunk-at-a-time,
      // then hand each fact its precomputed lane weights. Byte-identical to
      // the per-fact path (vm::PredProgram::EvalBatch contract).
      constexpr size_t kChunk = FactTable::kBatchRows;
      const size_t nact = progs->size();
      vm::PredProgram::BatchScratch scratch;
      std::vector<ValueId> cols(ndims * kChunk);
      std::vector<const ValueId*> colp(ndims);
      for (size_t d = 0; d < ndims; ++d) colp[d] = cols.data() + d * kChunk;
      std::vector<double> lanes(nact * kChunk);
      std::vector<double> row_w(nact);
      for (FactId f0 = begin; f0 < end; f0 += kChunk) {
        const size_t n = std::min<size_t>(kChunk, end - f0);
        for (size_t i = 0; i < n; ++i) {
          const ValueId* row = mo.FactCoords(f0 + i).data();
          for (size_t d = 0; d < ndims; ++d) cols[d * kChunk + i] = row[d];
        }
        for (size_t a = 0; a < nact; ++a) {
          if (const vm::PredProgram* p = (*progs)[a].get()) {
            p->EvalBatch(colp.data(), n, lanes.data() + a * kChunk, &scratch);
          }
        }
        for (size_t i = 0; i < n; ++i) {
          for (size_t a = 0; a < nact; ++a) row_w[a] = lanes[a * kChunk + i];
          if (!process(f0 + i, row_w.data())) return;
        }
      }
    } else {
      for (FactId f = begin; f < end; ++f) {
        if (!process(f, nullptr)) return;
      }
    }
  });

  // Deterministic merge, ascending shard order, reproducing the interleaved
  // serial error order exactly: each shard's groups are merged (surfacing any
  // out.AddFact error at that cell's globally first occurrence) *before* the
  // shard's own scan error is checked. A shard stops accumulating at its
  // first failing fact, so every group it carries precedes that fact, and
  // shards after the first failing one are never merged — the error reported
  // is the globally first failing fact's error at every thread count
  // (docs/PARALLELISM.md, "Error reporting").
  size_t facts_aggregated = 0;
  size_t facts_deleted = 0;
  for (ShardAccum& acc : accums) {
    for (ShardGroup& sg : acc.ordered) {
      auto it = groups.find(sg.cell);
      if (it == groups.end()) {
        // Globally first occurrence: materialize the output fact.
        DWRED_ASSIGN_OR_RETURN(FactId nf, out.AddFact(sg.cell, sg.meas));
        Group g;
        g.out_id = nf;
        g.responsible = sg.last_action_resp != kNoAction ? sg.last_action_resp
                                                         : sg.first_fallback;
        g.aggregated = sg.aggregated_if_first;
        g.sources = std::move(sg.sources);
        groups.emplace(std::move(sg.cell), std::move(g));
      } else {
        Group& g = it->second;
        for (size_t m = 0; m < nmeas; ++m) {
          auto mm = static_cast<MeasureId>(m);
          out.SetMeasure(g.out_id, mm,
                         CombineMeasure(mo.measure_type(mm).agg,
                                        out.Measure(g.out_id, mm), sg.meas[m]));
        }
        g.aggregated = true;
        if (sg.last_action_resp != kNoAction) {
          g.responsible = sg.last_action_resp;
        }
        g.sources.insert(g.sources.end(), sg.sources.begin(),
                         sg.sources.end());
      }
    }
    if (!acc.error.ok()) return runtime::CountAbort(acc.error);
    facts_aggregated += acc.facts_aggregated;
    facts_deleted += acc.facts_deleted;
  }

  if (options.track_provenance) {
    for (auto& [key, g] : groups) {
      if (!g.aggregated && g.sources.size() == 1) {
        // Unchanged fact: keep its name; record provenance so later passes
        // and aggregations still know the original constituents.
        FactId original = g.sources[0];
        out.SetFactName(g.out_id, "fact_" + std::to_string(original));
        out.SetProvenance(g.out_id, g.sources, g.responsible);
        continue;
      }
      std::sort(g.sources.begin(), g.sources.end());
      g.sources.erase(std::unique(g.sources.begin(), g.sources.end()),
                      g.sources.end());
      // Paper-style merged names: fact_0 + fact_3 -> "fact_03".
      std::string name = "fact_";
      for (FactId s : g.sources) name += std::to_string(s);
      out.SetFactName(g.out_id, std::move(name));
      out.SetProvenance(g.out_id, g.sources, g.responsible);
    }
  }

  if (stats) {
    stats->input_facts = mo.num_facts();
    stats->output_facts = out.num_facts();
    stats->facts_aggregated = facts_aggregated;
    stats->facts_deleted = facts_deleted;
  }

  // ReduceStats, folded into process-wide totals.
  static obs::Counter& c_passes = registry.GetCounter(
      "dwred_reduce_passes", "completed reduction passes");
  static obs::Counter& c_in = registry.GetCounter(
      "dwred_reduce_facts_in", "input facts scanned by reduction passes");
  static obs::Counter& c_out = registry.GetCounter(
      "dwred_reduce_facts_out", "facts materialized by reduction passes");
  static obs::Counter& c_agg = registry.GetCounter(
      "dwred_reduce_facts_aggregated",
      "input facts whose granularity changed during reduction");
  static obs::Counter& c_del = registry.GetCounter(
      "dwred_reduce_facts_deleted",
      "input facts removed by deletion actions during reduction");
  c_passes.Increment();
  c_in.Increment(mo.num_facts());
  c_out.Increment(out.num_facts());
  c_agg.Increment(facts_aggregated);
  c_del.Increment(facts_deleted);
  span.AddField("facts_in", static_cast<int64_t>(mo.num_facts()));
  span.AddField("facts_out", static_cast<int64_t>(out.num_facts()));
  span.AddField("facts_aggregated", static_cast<int64_t>(facts_aggregated));
  span.AddField("facts_deleted", static_cast<int64_t>(facts_deleted));
  if (obs::ProfilingEnabled()) {
    obs::OpProfile prof;
    prof.op = "reduce.pass";
    prof.trace_id = span.context().trace_id;
    prof.now_day = now_day;
    prof.rows_scanned = static_cast<int64_t>(mo.num_facts());
    prof.result_facts = static_cast<int64_t>(out.num_facts());
    prof.AddCounter("facts_aggregated", static_cast<int64_t>(facts_aggregated));
    prof.AddCounter("facts_deleted", static_cast<int64_t>(facts_deleted));
    prof.total_us = static_cast<int64_t>(span.ElapsedSeconds() * 1e6);
    static obs::Histogram& op_hist = obs::OpLatencyHistogram("reduce.pass");
    op_hist.Record(prof.total_us * 1e-6);
    obs::FlightRecorder::Global().Record(prof);
  }
  return out;
}

}  // namespace dwred
