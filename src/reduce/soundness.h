#pragma once

// The two semantic-soundness properties of data reduction specifications
// (paper Section 4.3) and their operational checks (Sections 5.2, 5.3):
//
//  * NonCrossing: any two actions whose predicates can ever overlap must be
//    <=_V-comparable — otherwise the winning granularity for the shared facts
//    would be undefined (and a predicate could become unevaluable after the
//    other action fires).
//  * Growing: the aggregation level of any cell is monotone over time in
//    every dimension — reduction is irreversible, so a shrinking predicate is
//    only admissible when higher actions take over every cell it releases.
//
// The checks follow the paper's algorithms: the syntactic <=_V fast path, the
// growth classification of bounds (fixed / growing / shrinking — cases A-H),
// Theorem 1's "growing actions are always safe" shortcut, and the three-step
// boundary-coverage implication (eq. (23)) discharged by the prover module.

#include "prover/checks.h"
#include "spec/action.h"

namespace dwred {

/// DNF-compiled view of a whole specification (Section 5.3 pre-processing;
/// one entry per action, one conjunct list per entry).
struct CompiledSpec {
  std::vector<std::vector<Conjunct>> per_action;
};

/// Compiles every action's predicate to DNF conjuncts.
Result<CompiledSpec> CompileSpec(const MultidimensionalObject& mo,
                                 const ReductionSpecification& spec);

/// Growth classification of one conjunct (paper Section 5.3 cases A-H). With
/// NOW +/- fixed offsets, moving bounds always move forward: a NOW-relative
/// upper bound grows the region (cases B/D), a NOW-relative lower bound
/// shrinks it (case F). Cases C/E/G/H (backward-moving bounds) are not
/// expressible in the language.
enum class GrowthClass : uint8_t {
  kFixed,      ///< case A: no NOW-relative bound
  kGrowing,    ///< cases B/D: NOW-relative upper bound only
  kShrinking,  ///< cases F/H-analogue: NOW-relative lower bound present
};
GrowthClass ClassifyGrowth(const Conjunct& c);

/// Checks the NonCrossing property (paper eq. (14)) for the whole set,
/// pairwise per the Section 5.2 algorithm. Returns CrossingViolation naming
/// the offending pair. The prover's Unknown answers are treated as overlap
/// (conservative rejection).
Status CheckNonCrossing(const MultidimensionalObject& mo,
                        const ReductionSpecification& spec,
                        const CompiledSpec& compiled,
                        const ProverOptions& opts = {});

/// Checks the Growing property (paper eq. (17)) for the whole set: every
/// shrinking conjunct's boundary must be covered by the conjuncts of
/// >=_V actions (eq. (23)). Returns GrowingViolation with a witness cell.
Status CheckGrowing(const MultidimensionalObject& mo,
                    const ReductionSpecification& spec,
                    const CompiledSpec& compiled,
                    const ProverOptions& opts = {});

/// Compiles and runs both checks.
Status ValidateSpecification(const MultidimensionalObject& mo,
                             const ReductionSpecification& spec,
                             const ProverOptions& opts = {});

}  // namespace dwred
