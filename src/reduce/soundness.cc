#include "reduce/soundness.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dwred {

namespace {

/// Counts one soundness-check run and its outcome, keyed by StatusCode name
/// (dwred_prover_<check>_checks / dwred_prover_<check>_outcomes_<Code>).
void RecordCheckOutcome(const char* check, const Status& st) {
  auto& registry = obs::MetricsRegistry::Global();
  registry
      .GetCounter(std::string("dwred_prover_") + check + "_checks",
                  "soundness-check runs")
      .Increment();
  registry
      .GetCounter(std::string("dwred_prover_") + check + "_outcomes_" +
                  StatusCodeName(st.code()))
      .Increment();
}

Status CheckNonCrossingImpl(const MultidimensionalObject& mo,
                            const ReductionSpecification& spec,
                            const CompiledSpec& compiled,
                            const ProverOptions& opts) {
  const auto& actions = spec.actions();
  for (size_t i = 0; i < actions.size(); ++i) {
    for (size_t j = i + 1; j < actions.size(); ++j) {
      // Line 2 of the Section 5.2 algorithm: ordered actions cannot cross.
      if (ActionLeq(mo, actions[i], actions[j]) ||
          ActionLeq(mo, actions[j], actions[i])) {
        continue;
      }
      // Lines 3-4: unordered actions must never overlap.
      for (const Conjunct& ci : compiled.per_action[i]) {
        for (const Conjunct& cj : compiled.per_action[j]) {
          TriBool overlap = ConjunctsEverOverlap(mo, ci, cj, opts);
          if (overlap != TriBool::kNo) {
            std::string why =
                overlap == TriBool::kYes ? "can overlap" : "may overlap";
            return Status::CrossingViolation(
                "actions '" + (actions[i].name.empty() ? actions[i].ToString(mo)
                                                       : actions[i].name) +
                "' and '" + (actions[j].name.empty() ? actions[j].ToString(mo)
                                                     : actions[j].name) +
                "' are not <=_V-comparable but their predicates " + why);
          }
        }
      }
    }
  }
  return Status::OK();
}

Status CheckGrowingImpl(const MultidimensionalObject& mo,
                        const ReductionSpecification& spec,
                        const CompiledSpec& compiled,
                        const ProverOptions& opts) {
  const auto& actions = spec.actions();
  for (size_t i = 0; i < actions.size(); ++i) {
    for (const Conjunct& c : compiled.per_action[i]) {
      if (ClassifyGrowth(c) != GrowthClass::kShrinking) {
        continue;  // Theorem 1: growing/fixed conjuncts are always safe.
      }
      // Step 2 of the Section 5.3 algorithm: candidate covers are the
      // conjuncts of actions a_j with a <=_V a_j (the shrinking conjunct's
      // own siblings included — its own region has moved past the boundary).
      std::vector<const Conjunct*> covers;
      for (size_t j = 0; j < actions.size(); ++j) {
        if (!ActionLeq(mo, actions[i], actions[j])) continue;
        for (const Conjunct& cj : compiled.per_action[j]) {
          if (&cj != &c) covers.push_back(&cj);
        }
      }
      // Step 3: the boundary-coverage implication (eq. (23)).
      std::string diagnostic;
      TriBool covered = BoundaryCovered(mo, c, covers, opts, &diagnostic);
      if (covered != TriBool::kYes) {
        std::string who = actions[i].name.empty() ? actions[i].ToString(mo)
                                                  : actions[i].name;
        return Status::GrowingViolation(
            "action '" + who + "' shrinks (NOW-relative lower bound) and " +
            (covered == TriBool::kNo ? "is not covered: " + diagnostic
                                     : "cannot be proven covered: " +
                                           diagnostic));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<CompiledSpec> CompileSpec(const MultidimensionalObject& mo,
                                 const ReductionSpecification& spec) {
  CompiledSpec out;
  out.per_action.reserve(spec.size());
  for (const Action& a : spec.actions()) {
    DWRED_ASSIGN_OR_RETURN(auto conjuncts, CompileToDnf(mo, *a.predicate));
    out.per_action.push_back(std::move(conjuncts));
  }
  return out;
}

GrowthClass ClassifyGrowth(const Conjunct& c) {
  if (c.time.HasNowLower()) return GrowthClass::kShrinking;
  if (c.time.HasNowUpper()) return GrowthClass::kGrowing;
  return GrowthClass::kFixed;
}

Status CheckNonCrossing(const MultidimensionalObject& mo,
                        const ReductionSpecification& spec,
                        const CompiledSpec& compiled,
                        const ProverOptions& opts) {
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "dwred_prover_noncrossing_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one NonCrossing check (Section 5.2)");
  obs::TraceSpan span("prover.noncrossing", &latency);
  Status st = CheckNonCrossingImpl(mo, spec, compiled, opts);
  RecordCheckOutcome("noncrossing", st);
  return st;
}

Status CheckGrowing(const MultidimensionalObject& mo,
                    const ReductionSpecification& spec,
                    const CompiledSpec& compiled,
                    const ProverOptions& opts) {
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "dwred_prover_growing_seconds", obs::DefaultLatencyBuckets(),
      "wall time of one Growing check (Section 5.3)");
  obs::TraceSpan span("prover.growing", &latency);
  Status st = CheckGrowingImpl(mo, spec, compiled, opts);
  RecordCheckOutcome("growing", st);
  return st;
}

Status ValidateSpecification(const MultidimensionalObject& mo,
                             const ReductionSpecification& spec,
                             const ProverOptions& opts) {
  DWRED_ASSIGN_OR_RETURN(CompiledSpec compiled, CompileSpec(mo, spec));
  DWRED_RETURN_IF_ERROR(CheckNonCrossing(mo, spec, compiled, opts));
  return CheckGrowing(mo, spec, compiled, opts);
}

}  // namespace dwred
