#pragma once

// Schema-level reduction — the second future-work direction of paper
// Section 8 ("explore reduction in the number of dimensions and measures")
// plus the Section 4.4 aside ("it is possible to physically remove
// bottom-level category types if there is no use for them"):
//
//  * DropDimension removes a dimension entirely, folding facts that collapse
//    onto identical remaining cells (the data-volume analogue of
//    dimensionality reduction, cf. the paper's related-work contrast with
//    Last & Maimon);
//  * DropMeasure removes one measure column;
//  * RaiseBottomCategory rebuilds one dimension without its categories below
//    a new bottom and rewrites the fact coordinates — facts must already be
//    at or above the new bottom (reduce first), since the removal is as
//    irreversible as aggregation.

#include "mdm/mo.h"

namespace dwred {

/// Removes dimension `dim`; facts with identical remaining coordinates are
/// folded with the measures' default aggregate functions. Provenance is
/// merged like Reduce's.
Result<MultidimensionalObject> DropDimension(const MultidimensionalObject& mo,
                                             DimensionId dim);

/// Removes measure `m`; facts are otherwise untouched.
Result<MultidimensionalObject> DropMeasure(const MultidimensionalObject& mo,
                                           MeasureId m);

/// Rebuilds dimension `dim` keeping only categories at or above
/// `new_bottom`, and rewrites fact coordinates into the rebuilt dimension.
/// Fails with InvalidArgument if any fact still sits below `new_bottom` in
/// that dimension (run Reduce first). The rebuilt dimension is fresh (not
/// shared with the input MO's other users).
Result<MultidimensionalObject> RaiseBottomCategory(
    const MultidimensionalObject& mo, DimensionId dim, CategoryId new_bottom);

}  // namespace dwred
